"""Property-based tests on the itensor type system (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dtypes import FLOAT32, INT8
from repro.ir.types import TensorType
from repro.itensor.converter import infer_converter
from repro.itensor.itensor_type import itensor_from_tiling
from repro.itensor.verify import verify_coverage


def divisors(n):
    return [d for d in range(1, n + 1) if n % d == 0]


@st.composite
def tiled_itensor_pair(draw):
    """Two itensor views (possibly different loop orders/tiles) of one tensor."""
    rank = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.sampled_from([4, 8, 16])) for _ in range(rank))
    tensor = TensorType(shape, INT8)

    def draw_view():
        tile = tuple(draw(st.sampled_from(divisors(dim))) for dim in shape)
        order = draw(st.permutations(list(range(rank))))
        return itensor_from_tiling(tensor, tile, loop_order=list(order))

    return tensor, draw_view(), draw_view()


@st.composite
def tiled_itensor(draw):
    rank = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.sampled_from([2, 4, 6, 8, 12])) for _ in range(rank))
    tensor = TensorType(shape, FLOAT32)
    tile = tuple(draw(st.sampled_from(divisors(dim))) for dim in shape)
    order = draw(st.permutations(list(range(rank))))
    return tensor, itensor_from_tiling(tensor, tile, loop_order=list(order))


class TestStreamOrderProperties:
    @given(tiled_itensor())
    @settings(max_examples=60, deadline=None)
    def test_stream_covers_every_tile_exactly_once(self, data):
        tensor, itype = data
        order = itype.stream_order_list()
        assert len(order) == itype.num_iterations
        assert len(set(order)) == len(order)
        # Offsets tile the tensor exactly.
        expected_tiles = math.prod(
            tensor.shape[d] // itype.element_shape[d] for d in range(tensor.rank))
        assert len(order) == expected_tiles

    @given(tiled_itensor())
    @settings(max_examples=60, deadline=None)
    def test_offsets_in_bounds_and_aligned(self, data):
        tensor, itype = data
        for offset in itype.stream_order_list():
            for dim, value in enumerate(offset):
                assert 0 <= value < tensor.shape[dim]
                assert value % itype.element_shape[dim] == 0

    @given(tiled_itensor())
    @settings(max_examples=60, deadline=None)
    def test_tensor_shape_reconstruction(self, data):
        tensor, itype = data
        assert itype.tensor_shape() == tensor.shape
        verify_coverage(itype)

    @given(tiled_itensor())
    @settings(max_examples=40, deadline=None)
    def test_compatibility_is_reflexive(self, data):
        _tensor, itype = data
        assert itype.is_compatible_with(itype)


class TestConverterProperties:
    @given(tiled_itensor_pair())
    @settings(max_examples=60, deadline=None)
    def test_converter_buffer_bounds(self, data):
        """The converter buffer is at least one source tile and at most the
        whole tensor (both counted in ping-pong bytes)."""
        tensor, producer, consumer = data
        if producer.element_shape != consumer.element_shape:
            return
        spec = infer_converter(producer, consumer)
        tile_elements = math.prod(producer.element_shape)
        full_elements = math.prod(tensor.shape)
        buffer_elements = math.prod(spec.buf_shape)
        assert tile_elements <= buffer_elements <= full_elements

    @given(tiled_itensor_pair())
    @settings(max_examples=60, deadline=None)
    def test_identical_views_need_no_buffering_beyond_one_tile(self, data):
        _tensor, producer, _ = data
        spec = infer_converter(producer, producer)
        assert spec.buf_shape == producer.element_shape

    @given(tiled_itensor_pair())
    @settings(max_examples=60, deadline=None)
    def test_shared_loops_form_outermost_prefix(self, data):
        _tensor, producer, consumer = data
        if producer.element_shape != consumer.element_shape:
            return
        spec = infer_converter(producer, consumer)
        assert list(spec.shared_loops) == list(range(spec.before_loop))

    @given(tiled_itensor_pair())
    @settings(max_examples=60, deadline=None)
    def test_reuse_times_buffer_covers_tensor(self, data):
        """reuse_factor * reduced dims coverage >= full tensor elements."""
        tensor, producer, consumer = data
        if producer.element_shape != consumer.element_shape:
            return
        spec = infer_converter(producer, consumer)
        covered = math.prod(spec.buf_shape) * spec.reuse_factor
        assert covered >= math.prod(tensor.shape)
