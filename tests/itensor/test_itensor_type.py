"""Tests for the iterative tensor type (Section 3.1.2, Figure 5)."""

import pytest

from repro.ir.affine import AffineMap
from repro.ir.dtypes import FLOAT32, INT8
from repro.itensor.itensor_type import ITensorError, ITensorType, itensor_from_tiling
from repro.ir.types import TensorType


class TestFigure5Semantics:
    """The three worked examples of Figure 5 must reproduce exactly."""

    def test_itensor_a_stream_order(self, itensor_a):
        order = itensor_a.stream_order_list(6)
        assert order == [(0, 0), (0, 2), (0, 4), (0, 6), (2, 0), (2, 2)]

    def test_itensor_b_stream_order(self, itensor_b):
        # Paper: data access indices become [0,0], [4,0], [0,2], [4,2], ...
        order = itensor_b.stream_order_list(4)
        assert order == [(0, 0), (4, 0), (0, 2), (4, 2)]

    def test_itensor_c_stream_order_reaccesses_rows(self, itensor_c):
        # Paper: indices like [0,0], [4,0], [0,0], [4,0], [0,2], ...
        order = itensor_c.stream_order_list(5)
        assert order == [(0, 0), (4, 0), (0, 0), (4, 0), (0, 2)]

    def test_all_cover_the_same_tensor(self, itensor_a, itensor_b, itensor_c):
        assert itensor_a.tensor_shape() == (8, 8)
        assert itensor_b.tensor_shape() == (8, 8)
        assert itensor_c.tensor_shape() == (8, 8)

    def test_token_counts(self, itensor_a, itensor_b, itensor_c):
        assert itensor_a.num_iterations == 16
        assert itensor_b.num_iterations == 8
        assert itensor_c.num_iterations == 16  # re-access doubles the tokens

    def test_reaccess_factor(self, itensor_b, itensor_c):
        assert itensor_b.reaccess_factor() == 1
        assert itensor_c.reaccess_factor() == 2

    def test_matching_types_are_compatible(self, itensor_b):
        other = ITensorType((4, 2), FLOAT32, (4, 2), (2, 4),
                            AffineMap.from_results(2, [1, 0]))
        assert itensor_b.matches(other)
        assert itensor_b.is_compatible_with(other)

    def test_mismatched_types_need_converter(self, itensor_b, itensor_c):
        assert not itensor_b.matches(itensor_c)
        assert not itensor_b.is_compatible_with(itensor_c)


class TestValidation:
    def test_tripcount_step_length_mismatch(self):
        with pytest.raises(ITensorError):
            ITensorType((2,), FLOAT32, (4, 2), (2,), AffineMap.identity(2))

    def test_map_arity_must_match_loops(self):
        with pytest.raises(ITensorError):
            ITensorType((2, 2), FLOAT32, (4,), (2,), AffineMap.identity(2))

    def test_map_results_must_match_rank(self):
        with pytest.raises(ITensorError):
            ITensorType((2, 2), FLOAT32, (4, 4), (2, 2),
                        AffineMap.projection(2, [0]))

    def test_non_positive_values_rejected(self):
        with pytest.raises(ITensorError):
            ITensorType((0, 2), FLOAT32, (4, 4), (2, 2), AffineMap.identity(2))
        with pytest.raises(ITensorError):
            ITensorType((2, 2), FLOAT32, (4, 0), (2, 2), AffineMap.identity(2))

    def test_vector_shape_must_divide_element(self):
        with pytest.raises(ITensorError):
            ITensorType((4, 2), FLOAT32, (2, 4), (4, 2), AffineMap.identity(2),
                        vector_shape=(3, 1))

    def test_vector_shape_rank_must_match(self):
        with pytest.raises(ITensorError):
            ITensorType((4, 2), FLOAT32, (2, 4), (4, 2), AffineMap.identity(2),
                        vector_shape=(2,))


class TestDerivedQuantities:
    def test_element_bytes(self, itensor_b):
        assert itensor_b.element_elements == 8
        assert itensor_b.element_bytes == 32.0

    def test_total_bytes_streamed_includes_reaccess(self, itensor_b, itensor_c):
        assert itensor_b.total_bytes_streamed == 8 * 32.0
        assert itensor_c.total_bytes_streamed == 16 * 32.0

    def test_with_vector_shape(self, itensor_b):
        vectorized = itensor_b.with_vector_shape((2, 2))
        assert vectorized.vector_shape == (2, 2)
        assert vectorized.element_shape == itensor_b.element_shape

    def test_with_dtype(self, itensor_b):
        assert itensor_b.with_dtype(INT8).dtype == INT8

    def test_str_contains_key_fields(self, itensor_b):
        text = str(itensor_b)
        assert "4x2" in text and "iter_space" in text and "iter_map" in text

    def test_loop_for_data_dim(self, itensor_c):
        assert itensor_c.loop_for_data_dim(0) == 2
        assert itensor_c.loop_for_data_dim(1) == 0


class TestItensorFromTiling:
    def test_row_major_tiling(self):
        itype = itensor_from_tiling(TensorType((64, 64), INT8), (16, 16))
        assert itype.element_shape == (16, 16)
        assert itype.iter_tripcounts == (4, 4)
        assert itype.iter_steps == (16, 16)
        assert itype.stream_order_list(5) == [
            (0, 0), (0, 16), (0, 32), (0, 48), (16, 0)]

    def test_column_major_loop_order(self):
        itype = itensor_from_tiling(TensorType((64, 64), INT8), (16, 16),
                                    loop_order=[1, 0])
        assert itype.stream_order_list(5) == [
            (0, 0), (16, 0), (32, 0), (48, 0), (0, 16)]

    def test_reaccess_loop_insertion(self):
        itype = itensor_from_tiling(TensorType((8, 8), FLOAT32), (4, 2),
                                    loop_order=[1, 0],
                                    reaccess_loops=[(1, 2)])
        assert itype.num_iterations == 16
        assert itype.reaccess_factor() == 2

    def test_non_dividing_tile_rejected(self):
        with pytest.raises(ITensorError):
            itensor_from_tiling(TensorType((10, 10), INT8), (3, 3))

    def test_bad_loop_order_rejected(self):
        with pytest.raises(ITensorError):
            itensor_from_tiling(TensorType((8, 8), INT8), (4, 4), loop_order=[0, 0])

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ITensorError):
            itensor_from_tiling(TensorType((8, 8), INT8), (4,))


class TestSameStreamOrder:
    def test_different_encoding_same_order(self):
        """A unit re-access loop does not change the stream order."""
        base = itensor_from_tiling(TensorType((8, 8), FLOAT32), (4, 2))
        padded = ITensorType((4, 2), FLOAT32, (2, 1, 4), (4, 1, 2),
                             AffineMap.from_results(3, [0, 2]))
        assert base.same_stream_order(padded)
        assert base.is_compatible_with(padded)

    def test_different_element_shape_not_compatible(self, itensor_a, itensor_b):
        assert not itensor_a.same_stream_order(itensor_b)
