"""Tests for stream (FIFO) and buffer types."""

import pytest

from repro.ir.dtypes import FLOAT32, INT8
from repro.itensor.stream_type import BufferType, StreamType


class TestStreamType:
    def test_scalar_stream_capacity(self):
        stream = StreamType(INT8, depth=32)
        assert stream.token_bits == 8
        assert stream.capacity_bytes == 32.0

    def test_vector_stream_capacity(self):
        stream = StreamType(INT8, depth=4, vector_shape=(8, 8))
        assert stream.token_elements == 64
        assert stream.capacity_bytes == 4 * 64

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamType(INT8, depth=0)

    def test_with_depth(self):
        assert StreamType(INT8, 2).with_depth(64).depth == 64

    def test_str(self):
        assert "depth: 8" in str(StreamType(FLOAT32, 8))
        assert "vector" in str(StreamType(INT8, 2, (4,)))


class TestBufferType:
    def test_ping_pong_doubles_bytes(self):
        single = BufferType((16, 64), INT8, double_buffered=False)
        double = BufferType((16, 64), INT8, double_buffered=True)
        assert double.size_bytes == 2 * single.size_bytes

    def test_to_memref(self):
        memref = BufferType((4, 4), FLOAT32, memory_space="uram").to_memref()
        assert memref.memory_space == "uram"
        assert memref.shape == (4, 4)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            BufferType((0, 4), INT8)

    def test_str_mentions_kind(self):
        assert "ping-pong" in str(BufferType((2, 2), INT8))
        assert "single" in str(BufferType((2, 2), INT8, double_buffered=False))
