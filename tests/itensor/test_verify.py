"""Tests for the itensor stream verifiers."""

import pytest

from repro.ir.affine import AffineMap
from repro.ir.dtypes import FLOAT32
from repro.ir.types import TensorType
from repro.itensor.itensor_type import ITensorType, itensor_from_tiling
from repro.itensor.verify import (
    StreamVerificationError,
    verify_connection,
    verify_coverage,
    verify_fifo_tokens,
)


class TestVerifyConnection:
    def test_matching_types_ok(self, itensor_b):
        verify_connection(itensor_b, itensor_b)

    def test_mismatch_without_converter_rejected(self, itensor_b, itensor_c):
        with pytest.raises(StreamVerificationError):
            verify_connection(itensor_b, itensor_c)

    def test_mismatch_with_converter_allowed(self, itensor_b, itensor_c):
        verify_connection(itensor_b, itensor_c, allow_converter=True)

    def test_incompatible_tensors_rejected_even_with_converter(self, itensor_b):
        other = itensor_from_tiling(TensorType((16, 16), FLOAT32), (4, 4))
        with pytest.raises(Exception):
            verify_connection(itensor_b, other, allow_converter=True)


class TestVerifyCoverage:
    def test_full_coverage_ok(self, itensor_b, itensor_c):
        verify_coverage(itensor_b)
        verify_coverage(itensor_c)

    def test_partial_coverage_rejected(self):
        partial = ITensorType((2, 2), FLOAT32, (2, 4), (2, 2),
                              AffineMap.identity(2))
        # Loop 0 covers only 4 of the 8 rows implied by tensor_shape... but
        # tensor_shape is derived from the loops, so build a gap via steps.
        gapped = ITensorType((2, 2), FLOAT32, (4, 4), (4, 2),
                             AffineMap.identity(2))
        with pytest.raises(StreamVerificationError):
            verify_coverage(gapped)
        verify_coverage(partial)

    def test_unscanned_dim_must_cover_extent(self):
        from repro.ir.affine import AffineConstantExpr, AffineDimExpr
        itype = ITensorType((2, 8), FLOAT32, (4,), (2,),
                            AffineMap(1, (AffineDimExpr(0), AffineConstantExpr(0))))
        verify_coverage(itype)


class TestVerifyFifoTokens:
    def test_matching_token_counts(self, itensor_b):
        assert verify_fifo_tokens(itensor_b, itensor_b) == 8

    def test_token_count_mismatch_rejected(self, itensor_b, itensor_c):
        with pytest.raises(StreamVerificationError, match="token count"):
            verify_fifo_tokens(itensor_b, itensor_c)
