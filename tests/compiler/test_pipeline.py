"""Tests for the end-to-end compilation pipeline."""

import pytest

from repro.compiler.options import CompilerOptions
from repro.compiler.pipeline import StreamTensorCompiler, compile_model_block
from repro.compiler.report import STAGE_NAMES
from repro.dataflow.structure import EdgeKind
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.models.config import GPT2
from repro.platform.fpga import AMD_U280
from repro.resource.token_model import EqualizationStrategy


def tiny_graph():
    builder = GraphBuilder("tiny")
    x = builder.input((32, 32), INT8)
    w = builder.weight((32, 32), INT8)
    builder.output(builder.gelu(builder.matmul(x, w)))
    return builder.build()


class TestCompilerPipeline:
    def test_all_stages_timed(self, gpt2_compiled):
        stages = gpt2_compiled.report.stage_seconds
        for name in STAGE_NAMES:
            assert name in stages
            assert stages[name] >= 0.0

    def test_result_has_all_products(self, gpt2_compiled):
        assert gpt2_compiled.fifo_sizing is not None
        assert gpt2_compiled.partition is not None
        assert gpt2_compiled.memory_allocation is not None
        assert gpt2_compiled.bufferization is not None
        assert gpt2_compiled.packing is not None
        assert gpt2_compiled.hls is not None
        assert gpt2_compiled.connectivity is not None
        assert gpt2_compiled.host is not None

    def test_report_summary(self, gpt2_compiled):
        report = gpt2_compiled.report
        assert report.model == "gpt2"
        assert report.num_kernels == len(gpt2_compiled.dataflow_graph.kernels)
        assert report.fits_on_chip
        assert 0.0 < report.memory_reduction_ratio <= 1.0
        assert "kernels" in str(report)

    def test_block_fuses_into_one_group(self, gpt2_compiled):
        assert gpt2_compiled.fusion_plan.num_groups == 1

    def test_stream_edges_have_sized_fifos(self, gpt2_compiled):
        for edge in gpt2_compiled.dataflow_graph.stream_edges():
            assert edge.fifo_depth is not None

    def test_compile_without_codegen(self):
        options = CompilerOptions(generate_code=False)
        result = StreamTensorCompiler(options).compile(tiny_graph())
        assert result.hls is None
        assert result.connectivity is None

    def test_compile_without_model_config_skips_host(self):
        result = compile_model_block(tiny_graph())
        assert result.host is None
        assert result.hls is not None

    def test_conservative_equalization_option(self):
        options = CompilerOptions(equalization=EqualizationStrategy.CONSERVATIVE,
                                  generate_code=False)
        result = StreamTensorCompiler(options).compile(tiny_graph())
        assert result.fifo_sizing.strategy is EqualizationStrategy.CONSERVATIVE

    def test_exploration_mode(self):
        options = CompilerOptions(explore_tiling=True, exploration_trials=3,
                                  generate_code=False)
        result = StreamTensorCompiler(options).compile(tiny_graph())
        assert result.tiling_space.nodes

    def test_alternate_platform(self):
        options = CompilerOptions(platform=AMD_U280, generate_code=False)
        result = StreamTensorCompiler(options).compile(tiny_graph(), GPT2)
        assert result.report.onchip_budget_bytes == AMD_U280.onchip_memory_bytes

    def test_tight_fusion_budget_creates_multiple_groups(self):
        builder = GraphBuilder("wide")
        x = builder.input((64, 64), INT8)
        w = builder.weight((64, 64), INT8)
        value = x
        for index in range(4):
            value = builder.matmul(value, w, name=f"mm{index}")
        builder.output(value)
        options = CompilerOptions(fusion_memory_fraction=1e-9,
                                  generate_code=False)
        result = StreamTensorCompiler(options).compile(builder.build())
        assert result.fusion_plan.num_groups > 1
        assert all(e.kind is EdgeKind.MEMORY
                   for e in result.dataflow_graph.internal_edges())


class TestCompilerOptions:
    def test_fusion_budget_derived_from_platform(self):
        options = CompilerOptions(fusion_memory_fraction=0.5)
        assert options.fusion_c_max_bytes == pytest.approx(41e6 * 0.5)

    def test_num_dies_defaults_to_platform(self):
        assert CompilerOptions().effective_num_dies == 3
        assert CompilerOptions(num_dies=2).effective_num_dies == 2
