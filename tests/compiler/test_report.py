"""Tests for compilation reports and stage timing."""

import time

from repro.compiler.report import STAGE_NAMES, CompileReport, StageTimer


class TestStageTimer:
    def test_stages_accumulate(self):
        timer = StageTimer()
        with timer.stage("Linalg_Opt"):
            time.sleep(0.001)
        with timer.stage("Linalg_Opt"):
            time.sleep(0.001)
        assert timer.timings["Linalg_Opt"] >= 0.002
        assert timer.total_seconds == sum(timer.timings.values())

    def test_breakdown_includes_all_canonical_stages(self):
        timer = StageTimer()
        with timer.stage("Code_Gen"):
            pass
        breakdown = timer.breakdown()
        assert list(breakdown)[: len(STAGE_NAMES)] == STAGE_NAMES

    def test_unknown_stage_preserved(self):
        timer = StageTimer()
        with timer.stage("Custom"):
            pass
        assert "Custom" in timer.breakdown()

    def test_exception_still_records_time(self):
        timer = StageTimer()
        try:
            with timer.stage("Bufferization"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "Bufferization" in timer.timings


class TestCompileReport:
    def test_memory_reduction_ratio(self):
        report = CompileReport(intermediate_bytes_unfused=100.0,
                               intermediate_bytes_fused=20.0)
        assert report.memory_reduction_ratio == 0.2

    def test_zero_unfused_is_ratio_one(self):
        assert CompileReport().memory_reduction_ratio == 1.0

    def test_fits_on_chip(self):
        report = CompileReport(intermediate_bytes_fused=10.0,
                               onchip_budget_bytes=100.0)
        assert report.fits_on_chip
        report = CompileReport(intermediate_bytes_fused=1000.0,
                               onchip_budget_bytes=100.0)
        assert not report.fits_on_chip

    def test_summary_lines(self):
        report = CompileReport(model="gpt2", num_kernels=5, num_fused_groups=1)
        text = str(report)
        assert "gpt2" in text and "5" in text
