"""Tests for the cycle-approximate dataflow simulator."""

import pytest

from repro.sim.simulator import (
    DataflowSimulator,
    DeadlockError,
    SimFifo,
    SimKernel,
)


def two_stage_pipeline(fifo_depth=4, src_ii=1.0, dst_ii=2.0, tokens=8):
    sim = DataflowSimulator()
    sim.add_fifo(SimFifo("input", capacity=tokens))
    sim.add_fifo(SimFifo("inter", capacity=fifo_depth))
    sim.add_fifo(SimFifo("output", capacity=tokens))
    sim.preload_fifo("input", tokens)
    sim.add_kernel(SimKernel("source", total_firings=tokens, initial_delay=3,
                             pipeline_ii=src_ii,
                             input_fifos=[("input", 1.0)],
                             output_fifos=[("inter", 1.0)]))
    sim.add_kernel(SimKernel("target", total_firings=tokens, initial_delay=1,
                             pipeline_ii=dst_ii,
                             input_fifos=[("inter", 1.0)],
                             output_fifos=[("output", 1.0)]))
    return sim


class TestBasicExecution:
    def test_pipeline_completes(self):
        result = two_stage_pipeline().run()
        assert not result.deadlocked
        assert result.total_cycles > 0
        assert result.fifo_max_occupancy["output"] == 8

    def test_throughput_limited_by_slowest_kernel(self):
        fast = two_stage_pipeline(dst_ii=1.0, tokens=32).run()
        slow = two_stage_pipeline(dst_ii=4.0, tokens=32).run()
        assert slow.total_cycles > fast.total_cycles

    def test_fifo_occupancy_tracked(self):
        result = two_stage_pipeline(fifo_depth=16).run()
        assert 1 <= result.fifo_max_occupancy["inter"] <= 16

    def test_overlapped_execution_beats_sequential(self):
        """Stream-based execution overlaps producer and consumer (Figure 1(c))."""
        result = two_stage_pipeline(fifo_depth=64, tokens=32).run()
        source_only = 3 + 32 * 1.0
        target_only = 1 + 32 * 2.0
        assert result.total_cycles < source_only + target_only


class TestBackPressure:
    def test_small_fifo_causes_backpressure_stalls(self):
        generous = two_stage_pipeline(fifo_depth=64, tokens=32).run()
        tight = two_stage_pipeline(fifo_depth=2, tokens=32).run()
        assert tight.total_backpressure_stalls >= generous.total_backpressure_stalls

    def test_adequate_fifo_avoids_source_backpressure(self):
        result = two_stage_pipeline(fifo_depth=64, tokens=32).run()
        assert result.backpressure_stalls["source"] == 0


class TestDeadlock:
    def make_deadlocking_sim(self):
        """A consumer needing two operands, one of which never arrives."""
        sim = DataflowSimulator()
        sim.add_fifo(SimFifo("a", capacity=4))
        sim.add_fifo(SimFifo("b", capacity=4))
        sim.add_kernel(SimKernel("consumer", total_firings=4,
                                 input_fifos=[("a", 1.0), ("b", 1.0)]))
        sim.add_kernel(SimKernel("producer_a", total_firings=4,
                                 output_fifos=[("a", 1.0)]))
        # producer_b is missing entirely: FIFO "b" stays empty.
        return sim

    def test_deadlock_raises(self):
        with pytest.raises(DeadlockError, match="deadlock"):
            self.make_deadlocking_sim().run()

    def test_deadlock_can_be_reported_instead(self):
        result = self.make_deadlocking_sim().run(raise_on_deadlock=False)
        assert result.deadlocked

    def test_undersized_reconvergent_fifo_deadlocks(self):
        """Pitfall 4: a too-shallow FIFO on a reconvergent path deadlocks."""
        sim = DataflowSimulator()
        sim.add_fifo(SimFifo("short", capacity=1))
        sim.add_fifo(SimFifo("long_in", capacity=1))
        sim.add_fifo(SimFifo("long_out", capacity=1))
        tokens = 8
        sim.add_kernel(SimKernel("producer", total_firings=tokens,
                                 output_fifos=[("short", 1.0), ("long_in", 1.0)]))
        # The long path has a huge initial delay before it forwards anything.
        sim.add_kernel(SimKernel("slow_mid", total_firings=tokens,
                                 initial_delay=100, pipeline_ii=1,
                                 input_fifos=[("long_in", 1.0)],
                                 output_fifos=[("long_out", 1.0)]))
        sim.add_kernel(SimKernel("joiner", total_firings=tokens,
                                 input_fifos=[("short", 1.0), ("long_out", 1.0)]))
        result = sim.run(raise_on_deadlock=False)
        # The producer cannot push into the full short FIFO, the joiner waits
        # for the long path, and nothing can proceed past the first tokens.
        assert result.deadlocked or result.total_backpressure_stalls > 0


class TestValidation:
    def test_duplicate_names_rejected(self):
        sim = DataflowSimulator()
        sim.add_kernel(SimKernel("k", total_firings=1))
        with pytest.raises(ValueError):
            sim.add_kernel(SimKernel("k", total_firings=1))
        sim.add_fifo(SimFifo("f", capacity=2))
        with pytest.raises(ValueError):
            sim.add_fifo(SimFifo("f", capacity=2))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SimFifo("f", capacity=0)
        with pytest.raises(ValueError):
            SimKernel("k", total_firings=1, pipeline_ii=0)

    def test_fifo_overflow_guard(self):
        fifo = SimFifo("f", capacity=1)
        fifo.push()
        with pytest.raises(OverflowError):
            fifo.push()

    def test_fifo_underflow_guard(self):
        with pytest.raises(RuntimeError):
            SimFifo("f", capacity=1).pop()

    def test_max_cycles_guard(self):
        sim = two_stage_pipeline(tokens=32)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_cycles=1)
