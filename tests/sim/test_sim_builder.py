"""Tests for building simulations from compiled dataflow graphs."""

import pytest

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.platform.fpga import AMD_U55C
from repro.sim.builder import build_simulation


def compile_small_chain(fifo_scale=1):
    builder = GraphBuilder("net")
    x = builder.input((32, 32), INT8)
    w = builder.weight((32, 32), INT8)
    y = builder.matmul(x, w, name="mm")
    z = builder.gelu(y, name="act")
    builder.output(z)
    options = CompilerOptions(default_tile_size=8, overall_unroll_size=16)
    return StreamTensorCompiler(options).compile(builder.build())


class TestBuildSimulation:
    def test_simulation_structure(self):
        result = compile_small_chain()
        simulation = build_simulation(result.dataflow_graph, AMD_U55C)
        graph = result.dataflow_graph
        assert len(simulation.edge_fifo_names) == len(graph.edges)
        # One simulated kernel per dataflow kernel plus host DMAs.
        expected = (len(graph.kernels) + len(graph.external_input_edges())
                    + len(graph.external_output_edges()))
        assert len(simulation.simulator.kernels) == expected

    def test_compiled_design_runs_to_completion(self):
        result = compile_small_chain()
        simulation = build_simulation(result.dataflow_graph, AMD_U55C)
        outcome = simulation.run(max_cycles=1e8)
        assert not outcome.deadlocked
        assert outcome.total_cycles > 0

    def test_sized_fifos_do_not_deadlock(self):
        """The LP-sized FIFO depths must keep the design deadlock-free."""
        result = compile_small_chain()
        graph = result.dataflow_graph
        assert all(e.fifo_depth and e.fifo_depth >= 2 for e in graph.stream_edges())
        outcome = build_simulation(graph, AMD_U55C).run(max_cycles=1e8)
        assert not outcome.deadlocked

    def test_stream_fifo_capacity_uses_sized_depth(self):
        result = compile_small_chain()
        graph = result.dataflow_graph
        simulation = build_simulation(graph, AMD_U55C)
        for edge in graph.stream_edges():
            fifo = simulation.simulator.fifos[simulation.edge_fifo_names[edge.uid]]
            assert fifo.capacity == max(2, edge.fifo_depth)

    def test_observed_occupancy_within_sized_depth(self):
        result = compile_small_chain()
        graph = result.dataflow_graph
        simulation = build_simulation(graph, AMD_U55C)
        outcome = simulation.run(max_cycles=1e8)
        for edge in graph.stream_edges():
            name = simulation.edge_fifo_names[edge.uid]
            assert outcome.fifo_max_occupancy[name] <= max(2, edge.fifo_depth)
