"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.ir.affine import AffineMap
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import FLOAT32
from repro.itensor.itensor_type import ITensorType
from repro.models.config import GPT2
from repro.models.transformer import build_decode_block, build_prefill_block


@pytest.fixture
def itensor_a() -> ITensorType:
    """Figure 5(a): itensor<2x2xf32, iter_space [4,4]*[2,2], identity map>."""
    return ITensorType((2, 2), FLOAT32, (4, 4), (2, 2), AffineMap.identity(2))


@pytest.fixture
def itensor_b() -> ITensorType:
    """Figure 5(b): itensor<4x2xf32, iter_space [4,2]*[2,4], (d0,d1)->(d1,d0)>."""
    return ITensorType((4, 2), FLOAT32, (4, 2), (2, 4),
                       AffineMap.from_results(2, [1, 0]))


@pytest.fixture
def itensor_c() -> ITensorType:
    """Figure 5(c): itensor<4x2xf32, iter_space [4,2,2]*[2,1,4], (d0,d1,d2)->(d2,d0)>."""
    return ITensorType((4, 2), FLOAT32, (4, 2, 2), (2, 1, 4),
                       AffineMap.from_results(3, [2, 0]))


@pytest.fixture
def matmul_gelu_graph():
    """A two-op graph: matmul followed by GELU (the running example)."""
    builder = GraphBuilder("toy")
    x = builder.input((64, 64))
    w = builder.weight((64, 64))
    y = builder.matmul(x, w)
    z = builder.gelu(y)
    builder.output(z)
    return builder.build()


@pytest.fixture(scope="session")
def gpt2_decode_graph():
    """GPT-2 decode-stage transformer block (seq=1, kv=64)."""
    return build_decode_block(GPT2, kv_len=64)


@pytest.fixture(scope="session")
def gpt2_prefill_graph():
    """GPT-2 prefill-stage transformer block (seq=64)."""
    return build_prefill_block(GPT2, 64)


@pytest.fixture(scope="session")
def gpt2_compiled(gpt2_decode_graph):
    """A full compilation of the GPT-2 decode block (shared across tests)."""
    compiler = StreamTensorCompiler(CompilerOptions())
    return compiler.compile(gpt2_decode_graph, GPT2)
