"""Tests for the transformer block graph builders."""

import math

import pytest

from repro.models.config import GEMMA, GPT2, LLAMA, MODEL_CONFIGS, QWEN
from repro.models.layers import attention_scores, head_projection
from repro.models.transformer import (
    BlockSpec,
    block_flops,
    build_decode_block,
    build_prefill_block,
    build_transformer_block,
    model_flops,
)
from repro.ir.builder import GraphBuilder


class TestBlockConstruction:
    @pytest.mark.parametrize("config", list(MODEL_CONFIGS.values()),
                             ids=list(MODEL_CONFIGS))
    def test_blocks_build_and_verify(self, config):
        graph = build_prefill_block(config, 32)
        graph.verify()
        assert len(graph.outputs) == 3  # hidden, new keys, new values

    def test_decode_block_has_seq_one(self):
        graph = build_decode_block(GPT2, kv_len=64)
        hidden_in = graph.inputs[0]
        assert hidden_in.type.shape[0] == 1

    def test_kv_cache_inputs_present(self):
        graph = build_decode_block(QWEN, kv_len=128)
        names = {v.name for v in graph.inputs}
        assert any("k_cache" in name for name in names)
        assert any("v_cache" in name for name in names)

    def test_gated_ffn_has_two_up_projections(self):
        gated = build_prefill_block(LLAMA, 16)
        plain = build_prefill_block(GPT2, 16)
        gated_matmuls = sum(1 for op in gated.ops if op.kind == "matmul")
        plain_matmuls = sum(1 for op in plain.ops if op.kind == "matmul")
        assert gated_matmuls == plain_matmuls + 1

    def test_norm_kind_follows_config(self):
        gpt2_kinds = {op.kind for op in build_prefill_block(GPT2, 8).ops}
        llama_kinds = {op.kind for op in build_prefill_block(LLAMA, 8).ops}
        assert "layer_norm" in gpt2_kinds and "rms_norm" not in gpt2_kinds
        assert "rms_norm" in llama_kinds and "layer_norm" not in llama_kinds

    def test_block_spec_is_decode(self):
        assert BlockSpec(GPT2, 1, 32).is_decode
        assert not BlockSpec(GPT2, 32, 32).is_decode

    def test_weights_have_correct_total_size(self):
        """Graph weights must add up to roughly one layer's parameters."""
        graph = build_prefill_block(GPT2, 8)
        weight_elements = sum(op.result_type.num_elements
                              for op in graph.ops if op.kind == "weight")
        assert weight_elements == pytest.approx(GPT2.layer_params(), rel=0.01)


class TestAttentionHelpers:
    def test_head_projection_shape(self):
        builder = GraphBuilder()
        x = builder.input((8, GPT2.hidden_size))
        q = head_projection(builder, x, GPT2, GPT2.num_kv_heads, 1, 8, "q")
        assert q.type.shape == (16, 1, 8, 64)

    def test_attention_scores_shape_mismatch(self):
        builder = GraphBuilder()
        q = builder.input((4, 2, 8, 64))
        k = builder.input((2, 16, 64))
        with pytest.raises(ValueError):
            attention_scores(builder, q, k)


class TestFlopCounts:
    def test_block_flops_match_graph(self):
        """The analytical block FLOPs track the per-op graph FLOPs closely."""
        seq = 32
        graph = build_prefill_block(GPT2, seq)
        graph_flops = sum(op.flops() for op in graph.ops
                          if op.kind in ("matmul", "head_projection",
                                         "attention_scores", "attention_context",
                                         "output_projection"))
        analytic = block_flops(GPT2, seq, seq)
        assert graph_flops == pytest.approx(analytic, rel=0.05)

    def test_model_flops_include_lm_head(self):
        per_block = block_flops(GPT2, 1, 64)
        total = model_flops(GPT2, 1, 64)
        assert total > GPT2.num_layers * per_block

    def test_decode_flops_much_smaller_than_prefill(self):
        assert block_flops(GPT2, 1, 64) < block_flops(GPT2, 64, 64) / 10

    def test_gqa_reduces_kv_projection_flops(self):
        """Qwen's 2 KV heads shrink K/V projections relative to MHA."""
        mha_like = QWEN.hidden_size * QWEN.hidden_size * 2
        gqa = QWEN.hidden_size * QWEN.kv_hidden_size * 2
        assert gqa < mha_like / 3
