"""Tests for inference workload descriptions."""

import pytest

from repro.models.workload import (
    FIGURE9_WORKLOADS,
    TABLE4_WORKLOADS,
    Workload,
    workload_from_label,
)


class TestWorkload:
    def test_label(self):
        assert Workload(32, 64).label == "[32:64]"

    def test_total_tokens(self):
        assert Workload(32, 64).total_tokens == 96

    def test_decode_kv_lengths(self):
        lengths = list(Workload(8, 4).decode_kv_lengths())
        assert lengths == [9, 10, 11]
        assert Workload(8, 4).num_decode_steps == 3

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            Workload(0, 4)
        with pytest.raises(ValueError):
            Workload(4, 0)

    def test_parse_label(self):
        assert workload_from_label("[128:64]") == Workload(128, 64)
        assert workload_from_label(" 32:32 ") == Workload(32, 32)
        with pytest.raises(ValueError):
            workload_from_label("[32]")


class TestSweeps:
    def test_table4_sweep(self):
        assert [w.label for w in TABLE4_WORKLOADS] == [
            "[32:32]", "[64:64]", "[128:128]", "[256:256]"]

    def test_figure9_sweep_is_3x3(self):
        assert len(FIGURE9_WORKLOADS) == 9
        assert {w.input_len for w in FIGURE9_WORKLOADS} == {32, 64, 128}
        assert {w.output_len for w in FIGURE9_WORKLOADS} == {32, 64, 128}
