"""Tests for the Table 7 model configurations."""

import pytest

from repro.models.config import (
    GEMMA,
    GPT2,
    LLAMA,
    MODEL_CONFIGS,
    ModelConfig,
    QWEN,
    get_model_config,
)


class TestTable7Values:
    @pytest.mark.parametrize("config,layers,hidden,ffn,heads,kv_heads,activation", [
        (GPT2, 24, 1024, 4096, 16, 16, "gelu"),
        (QWEN, 24, 896, 4864, 14, 2, "silu"),
        (LLAMA, 22, 2048, 5632, 32, 4, "silu"),
        (GEMMA, 26, 1152, 6912, 4, 1, "gelu"),
    ])
    def test_table7_rows(self, config, layers, hidden, ffn, heads, kv_heads,
                         activation):
        assert config.num_layers == layers
        assert config.hidden_size == hidden
        assert config.ffn_hidden_size == ffn
        assert config.num_heads == heads
        assert config.num_kv_heads == kv_heads
        assert config.activation == activation

    def test_registry_and_lookup(self):
        assert set(MODEL_CONFIGS) == {"gpt2", "qwen", "llama", "gemma"}
        assert get_model_config("GPT2") is GPT2
        with pytest.raises(KeyError):
            get_model_config("opt")


class TestDerivedProperties:
    def test_head_dim(self):
        assert GPT2.head_dim == 64
        assert LLAMA.head_dim == 64
        assert GEMMA.head_dim == 288

    def test_kv_group_size(self):
        assert GPT2.kv_group_size == 1
        assert QWEN.kv_group_size == 7
        assert LLAMA.kv_group_size == 8
        assert GEMMA.kv_group_size == 4

    def test_kv_hidden_smaller_with_gqa(self):
        assert QWEN.kv_hidden_size < QWEN.hidden_size
        assert GPT2.kv_hidden_size == GPT2.hidden_size

    def test_parameter_counts_are_plausible(self):
        """Sanity-check total parameters against the models' nominal sizes."""
        assert 0.25e9 < GPT2.total_params() < 0.5e9      # GPT-2 medium ~355M
        assert 0.3e9 < QWEN.total_params() < 0.7e9       # Qwen2.5-0.5B
        assert 0.9e9 < LLAMA.total_params() < 1.6e9      # Llama-3.2-1B class
        assert 0.7e9 < GEMMA.total_params() < 1.4e9      # Gemma-3-1B class

    def test_layer_params_decompose(self):
        for config in MODEL_CONFIGS.values():
            assert config.layer_params() == (config.attention_params()
                                             + config.ffn_params()
                                             + 2 * config.hidden_size)

    def test_kv_cache_bytes_per_token(self):
        assert GPT2.kv_cache_bytes_per_token(1.0) == 2 * 24 * 1024

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 100, 400, 3, 3, "gelu", "layer_norm", False, 1000)
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 96, 384, 4, 3, "gelu", "layer_norm", False, 1000)
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 96, 384, 4, 2, "relu6", "layer_norm", False, 1000)
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 96, 384, 4, 2, "gelu", "group_norm", False, 1000)
