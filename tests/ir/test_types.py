"""Tests for repro.ir.types."""

import pytest

from repro.ir.dtypes import FLOAT32, INT4, INT8
from repro.ir.types import MemRefType, TensorType, VectorType


class TestTensorType:
    def test_basic_properties(self):
        t = TensorType((8, 8), FLOAT32)
        assert t.rank == 2
        assert t.num_elements == 64
        assert t.size_bits == 64 * 32
        assert t.size_bytes == 256.0

    def test_sub_byte_tensor_size(self):
        t = TensorType((1024, 1024), INT4)
        assert t.size_bytes == 1024 * 1024 / 2

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorType((0, 4), FLOAT32)

    def test_with_shape(self):
        t = TensorType((8, 8), INT8).with_shape((4, 16))
        assert t.shape == (4, 16)
        assert t.dtype == INT8

    def test_str(self):
        assert str(TensorType((8, 8), FLOAT32)) == "tensor<8x8xf32>"

    def test_equality_and_hash(self):
        assert TensorType((2, 2), INT8) == TensorType((2, 2), INT8)
        assert len({TensorType((2, 2), INT8), TensorType((2, 2), INT8)}) == 1


class TestVectorType:
    def test_size(self):
        v = VectorType((8, 8), INT8)
        assert v.num_elements == 64
        assert v.size_bits == 512

    def test_str(self):
        assert str(VectorType((8, 8), INT8)) == "vector<8x8xi8>"


class TestMemRefType:
    def test_single_buffer_size(self):
        m = MemRefType((16, 64), INT8, double_buffered=False)
        assert m.size_bytes == 1024.0

    def test_ping_pong_doubles_size(self):
        m = MemRefType((16, 64), INT8, double_buffered=True)
        assert m.size_bytes == 2048.0

    def test_str_mentions_ping_pong(self):
        m = MemRefType((4, 4), FLOAT32, "uram", double_buffered=True)
        assert "ping-pong" in str(m)
        assert "uram" in str(m)
