"""Tests for the Linalg optimisation passes."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.passes import (
    FoldUnitExtentDims,
    FuseElementwiseOps,
    FuseLinalgFill,
    PassManager,
    default_linalg_pipeline,
)


def elementwise_chain_graph():
    builder = GraphBuilder("chain")
    x = builder.input((8, 8))
    w = builder.weight((8, 8))
    y = builder.matmul(x, w)
    a = builder.gelu(y)
    b = builder.add(a, x)
    builder.output(b)
    return builder.build()


class TestFuseElementwiseOps:
    def test_fuses_single_use_chain(self):
        graph = elementwise_chain_graph()
        fused = FuseElementwiseOps().run(graph)
        kinds = [op.kind for op in fused.ops]
        assert "gelu" not in kinds
        add = fused.op_by_name("add")
        assert "gelu" in add.attributes["fused_kinds"]

    def test_does_not_fuse_multi_use_producer(self):
        builder = GraphBuilder()
        x = builder.input((4, 4))
        g = builder.gelu(x)
        builder.output(builder.add(g, x), builder.mul(g, x))
        graph = builder.build()
        fused = FuseElementwiseOps().run(graph)
        assert any(op.kind == "gelu" for op in fused.ops)

    def test_original_graph_untouched(self):
        graph = elementwise_chain_graph()
        before = len(graph.ops)
        FuseElementwiseOps().run(graph)
        assert len(graph.ops) == before

    def test_result_verifies(self):
        FuseElementwiseOps().run(elementwise_chain_graph()).verify()


class TestFuseLinalgFill:
    def test_fill_folded_into_consumer(self):
        builder = GraphBuilder()
        x = builder.input((4, 4))
        zero = builder.fill((4, 4), value=0.0)
        builder.output(builder.add(x, zero))
        graph = builder.build()
        result = FuseLinalgFill().run(graph)
        assert not any(op.kind == "fill" for op in result.ops)
        add = next(op for op in result.ops if op.kind == "add")
        assert add.attributes["init_value"] == 0.0

    def test_unused_fill_left_alone(self):
        builder = GraphBuilder()
        x = builder.input((4, 4))
        builder.fill((4, 4))
        builder.output(builder.gelu(x))
        graph = builder.build()
        result = FuseLinalgFill().run(graph)
        result.verify()


class TestFoldUnitExtentDims:
    def test_unit_dims_recorded(self):
        builder = GraphBuilder()
        x = builder.input((1, 16))
        builder.output(builder.gelu(x))
        graph = builder.build()
        result = FoldUnitExtentDims().run(graph)
        gelu = next(op for op in result.ops if op.kind == "gelu")
        assert gelu.attributes.get("folded_unit_dims") == (0,)

    def test_no_unit_dims_no_attribute(self):
        builder = GraphBuilder()
        x = builder.input((4, 16))
        builder.output(builder.gelu(x))
        result = FoldUnitExtentDims().run(builder.build())
        gelu = next(op for op in result.ops if op.kind == "gelu")
        assert "folded_unit_dims" not in gelu.attributes


class TestPassManager:
    def test_default_pipeline_runs_and_records_stats(self):
        manager = default_linalg_pipeline()
        graph = manager.run(elementwise_chain_graph())
        graph.verify()
        assert "fuse_elementwise_ops" in manager.result.stats

    def test_pipeline_reduces_op_count_on_gpt2_block(self, gpt2_decode_graph):
        manager = default_linalg_pipeline()
        optimized = manager.run(gpt2_decode_graph)
        assert len(optimized.ops) <= len(gpt2_decode_graph.ops)
        optimized.verify()

    def test_add_returns_self_for_chaining(self):
        manager = PassManager()
        assert manager.add(FuseElementwiseOps()) is manager
