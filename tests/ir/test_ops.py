"""Tests for repro.ir.ops (structured Linalg-style operations)."""

import pytest

from repro.ir.dtypes import FLOAT32, INT8
from repro.ir.ops import (
    IteratorType,
    LinalgOp,
    Value,
    make_batch_matmul,
    make_elementwise,
    make_fill,
    make_matmul,
    make_norm,
    make_reduction,
    make_softmax,
    make_transpose,
    make_weight,
)
from repro.ir.types import TensorType
from repro.ir.affine import AffineMap


def value(shape, dtype=FLOAT32, name="x"):
    return Value(TensorType(shape, dtype), name=name)


class TestMatmul:
    def test_shapes_and_iterators(self):
        op = make_matmul(value((8, 16)), value((16, 32)))
        assert op.result_type.shape == (8, 32)
        assert op.iterator_types == [IteratorType.PARALLEL, IteratorType.PARALLEL,
                                     IteratorType.REDUCTION]
        assert op.loop_bounds() == [8, 32, 16]

    def test_contraction_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_matmul(value((8, 16)), value((8, 32)))

    def test_flops(self):
        op = make_matmul(value((8, 16)), value((16, 32)))
        assert op.flops() == 2 * 8 * 16 * 32

    def test_reduction_and_parallel_dims(self):
        op = make_matmul(value((4, 4)), value((4, 4)))
        assert op.reduction_dims == [2]
        assert op.parallel_dims == [0, 1]

    def test_not_elementwise(self):
        op = make_matmul(value((4, 4)), value((4, 4)))
        assert not op.is_elementwise


class TestBatchMatmul:
    def test_shapes(self):
        op = make_batch_matmul(value((2, 8, 16)), value((2, 16, 4)))
        assert op.result_type.shape == (2, 8, 4)
        assert op.loop_bounds() == [2, 8, 4, 16]

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_batch_matmul(value((2, 8, 16)), value((3, 16, 4)))


class TestElementwise:
    def test_add_shapes(self):
        op = make_elementwise("add", [value((4, 4)), value((4, 4))])
        assert op.result_type.shape == (4, 4)
        assert op.is_elementwise

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_elementwise("add", [value((4, 4)), value((4, 8))])

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            make_elementwise("add", [])

    def test_iteration_count(self):
        op = make_elementwise("gelu", [value((8, 128))])
        assert op.iteration_count() == 1024


class TestReductionsAndNorms:
    def test_reduction_drops_axis(self):
        op = make_reduction("sum", value((4, 8)), axis=1)
        assert op.result_type.shape == (4,)
        assert op.reduction_dims == [1]

    def test_reduction_bad_axis(self):
        with pytest.raises(ValueError):
            make_reduction("sum", value((4, 8)), axis=2)

    def test_softmax_keeps_shape_with_reduction_axis(self):
        op = make_softmax(value((2, 8, 8)), axis=-1)
        assert op.result_type.shape == (2, 8, 8)
        assert op.reduction_dims == [2]

    def test_layer_norm_with_weight(self):
        op = make_norm("layer_norm", value((4, 16)), value((16,), name="w"))
        assert op.result_type.shape == (4, 16)
        assert op.reduction_dims == [1]

    def test_unknown_norm_kind(self):
        with pytest.raises(ValueError):
            make_norm("batch_norm", value((4, 16)))


class TestConstantsAndMisc:
    def test_fill_is_constant(self):
        op = make_fill((4, 4), FLOAT32, value=1.5)
        assert op.is_constant
        assert op.attributes["value"] == 1.5

    def test_weight_is_constant(self):
        assert make_weight((8, 8), INT8).is_constant

    def test_transpose(self):
        op = make_transpose(value((2, 3, 4)), (2, 0, 1))
        assert op.result_type.shape == (4, 2, 3)

    def test_transpose_invalid_perm(self):
        with pytest.raises(ValueError):
            make_transpose(value((2, 3)), (0, 0))

    def test_bytes_accessed_counts_inputs_and_result(self):
        op = make_matmul(value((4, 4)), value((4, 4)))
        assert op.bytes_accessed() == 3 * 16 * 4


class TestLinalgOpValidation:
    def test_wrong_map_count_rejected(self):
        with pytest.raises(ValueError, match="indexing maps"):
            LinalgOp("custom", [value((4, 4))], TensorType((4, 4), FLOAT32),
                     [IteratorType.PARALLEL] * 2,
                     [AffineMap.identity(2)])

    def test_wrong_map_arity_rejected(self):
        with pytest.raises(ValueError, match="iterators"):
            LinalgOp("custom", [value((4, 4))], TensorType((4, 4), FLOAT32),
                     [IteratorType.PARALLEL] * 2,
                     [AffineMap.identity(3), AffineMap.identity(2)])

    def test_inconsistent_extents_detected(self):
        op = LinalgOp("custom", [value((4, 4)), value((8, 8))],
                      TensorType((4, 4), FLOAT32),
                      [IteratorType.PARALLEL] * 2,
                      [AffineMap.identity(2), AffineMap.identity(2),
                       AffineMap.identity(2)])
        with pytest.raises(ValueError, match="inconsistent extent"):
            op.loop_bounds()

    def test_result_value_links_back_to_op(self):
        op = make_matmul(value((4, 4)), value((4, 4)))
        assert op.result.producer is op
        assert not op.result.is_graph_input
