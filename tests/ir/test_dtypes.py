"""Tests for repro.ir.dtypes."""

import pytest

from repro.ir.dtypes import (
    DType,
    DTypeKind,
    FLOAT16,
    FLOAT32,
    INT4,
    INT8,
    UINT8,
    parse_dtype,
)


class TestDType:
    def test_bytes_of_standard_types(self):
        assert FLOAT32.bytes == 4.0
        assert FLOAT16.bytes == 2.0
        assert INT8.bytes == 1.0

    def test_sub_byte_types_have_fractional_bytes(self):
        assert INT4.bytes == 0.5

    def test_is_float_and_is_integer(self):
        assert FLOAT32.is_float and not FLOAT32.is_integer
        assert INT8.is_integer and not INT8.is_float
        assert UINT8.is_integer

    def test_str_forms(self):
        assert str(FLOAT32) == "f32"
        assert str(INT4) == "i4"
        assert str(UINT8) == "u8"

    def test_invalid_bit_width_rejected(self):
        with pytest.raises(ValueError):
            DType(DTypeKind.INT, 0)
        with pytest.raises(ValueError):
            DType(DTypeKind.FLOAT, -8)

    def test_dtype_is_hashable_and_comparable(self):
        assert DType(DTypeKind.FLOAT, 32) == FLOAT32
        assert len({FLOAT32, DType(DTypeKind.FLOAT, 32), INT8}) == 2


class TestParseDtype:
    @pytest.mark.parametrize("name,expected", [
        ("f32", FLOAT32), ("f16", FLOAT16), ("i8", INT8), ("i4", INT4),
        ("u8", UINT8),
    ])
    def test_parse_known_names(self, name, expected):
        assert parse_dtype(name) == expected

    def test_parse_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            parse_dtype("q3")
