"""Tests for repro.ir.graph."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph, VerificationError
from repro.ir.ops import Value, make_elementwise, make_matmul
from repro.ir.types import TensorType
from repro.ir.dtypes import FLOAT32


def build_chain():
    builder = GraphBuilder("chain")
    x = builder.input((8, 8))
    w = builder.weight((8, 8))
    y = builder.matmul(x, w)
    z = builder.gelu(y)
    builder.output(z)
    return builder.build()


class TestGraphStructure:
    def test_users_and_producers(self):
        graph = build_chain()
        matmul = graph.op_by_name("matmul")
        gelu = graph.op_by_name("gelu")
        assert graph.users(matmul.result) == [gelu]
        assert matmul in graph.producers_of(gelu)

    def test_op_by_name_missing(self):
        with pytest.raises(KeyError):
            build_chain().op_by_name("nope")

    def test_intermediate_values_excludes_outputs(self):
        graph = build_chain()
        intermediates = graph.intermediate_values()
        names = {v.name for v in intermediates}
        assert any("matmul" in n for n in names)
        assert not any("gelu" in n for n in names)

    def test_total_intermediate_bytes(self):
        graph = build_chain()
        # matmul result 8x8xf32 = 256B plus the weight feeding the matmul.
        assert graph.total_intermediate_bytes() >= 256.0

    def test_topological_sort_orders_dependencies(self):
        graph = build_chain()
        order = [op.name for op in graph.topological_sort()]
        assert order.index("matmul") < order.index("gelu")

    def test_clone_is_independent(self):
        graph = build_chain()
        clone = graph.clone()
        assert len(clone.ops) == len(graph.ops)
        clone.ops[0].attributes["marker"] = True
        assert "marker" not in graph.ops[0].attributes

    def test_clone_preserves_outputs(self):
        graph = build_chain()
        clone = graph.clone()
        assert len(clone.outputs) == 1
        clone.verify()


class TestVerification:
    def test_valid_graph_passes(self):
        build_chain().verify()

    def test_duplicate_names_rejected(self):
        graph = build_chain()
        graph.ops[1].name = graph.ops[0].name
        with pytest.raises(VerificationError, match="duplicate"):
            graph.verify()

    def test_use_before_def_rejected(self):
        graph = build_chain()
        graph.ops.reverse()
        with pytest.raises(VerificationError):
            graph.verify()

    def test_unknown_input_rejected(self):
        graph = build_chain()
        stray = Value(TensorType((8, 8), FLOAT32), name="%stray")
        graph.ops[-1].inputs.append(stray)
        graph.ops[-1].indexing_maps.insert(0, graph.ops[-1].indexing_maps[0])
        with pytest.raises(VerificationError, match="not a graph input"):
            graph.verify()

    def test_output_not_produced_rejected(self):
        graph = build_chain()
        graph.outputs.append(Value(TensorType((2, 2), FLOAT32)))
        with pytest.raises(VerificationError, match="output"):
            graph.verify()

    def test_erase_op_with_uses_rejected(self):
        graph = build_chain()
        with pytest.raises(VerificationError):
            graph.erase_op(graph.op_by_name("matmul"))

    def test_replace_all_uses(self):
        graph = build_chain()
        matmul = graph.op_by_name("matmul")
        replacement = graph.inputs[0]
        graph.replace_all_uses(matmul.result, replacement)
        assert graph.users(matmul.result) == []
        graph.erase_op(matmul)

    def test_normalize_restores_order(self):
        graph = build_chain()
        graph.ops.reverse()
        graph.normalize()
        graph.verify()

    def test_str_contains_ops(self):
        text = str(build_chain())
        assert "matmul" in text and "return" in text
