"""Tests for repro.ir.builder.GraphBuilder."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


class TestGraphBuilder:
    def test_unique_names(self):
        builder = GraphBuilder()
        a = builder.input((4, 4), name="x")
        b = builder.input((4, 4), name="x")
        assert a.name != b.name

    def test_matmul_chain_builds_valid_graph(self):
        builder = GraphBuilder("net")
        x = builder.input((16, 32), INT8)
        w1 = builder.weight((32, 64), INT8)
        w2 = builder.weight((64, 16), INT8)
        h = builder.matmul(x, w1)
        h = builder.gelu(h)
        y = builder.matmul(h, w2)
        builder.output(y)
        graph = builder.build()
        assert len(graph.ops) == 5
        assert graph.outputs[0].type.shape == (16, 16)

    def test_elementwise_helpers(self):
        builder = GraphBuilder()
        x = builder.input((8, 8))
        y = builder.input((8, 8))
        for result in (builder.add(x, y), builder.mul(x, y), builder.gelu(x),
                       builder.silu(x), builder.rotary(x)):
            assert result.type.shape == (8, 8)

    def test_norms_and_softmax(self):
        builder = GraphBuilder()
        x = builder.input((4, 16))
        w = builder.weight((16,))
        assert builder.layer_norm(x, w).type.shape == (4, 16)
        assert builder.rms_norm(x, w).type.shape == (4, 16)
        assert builder.softmax(x).type.shape == (4, 16)

    def test_reduce_and_transpose(self):
        builder = GraphBuilder()
        x = builder.input((4, 16))
        assert builder.reduce("max", x, axis=1).type.shape == (4,)
        assert builder.transpose(x, (1, 0)).type.shape == (16, 4)

    def test_fill_and_weight_are_constant_ops(self):
        builder = GraphBuilder()
        builder.fill((2, 2), value=0.0)
        builder.weight((2, 2))
        graph = builder.graph
        assert all(op.is_constant for op in graph.ops)

    def test_build_verifies(self):
        builder = GraphBuilder()
        x = builder.input((4, 4))
        builder.output(builder.gelu(x))
        graph = builder.build()
        assert graph.inputs and graph.outputs
