"""Tests for repro.ir.affine."""

import pytest

from repro.ir.affine import (
    AffineConstantExpr,
    AffineDimExpr,
    AffineMap,
    AffineScaledExpr,
)


class TestAffineExpr:
    def test_dim_expr_evaluates_to_index(self):
        assert AffineDimExpr(1).evaluate([10, 20, 30]) == 20

    def test_constant_expr_ignores_indices(self):
        assert AffineConstantExpr(7).evaluate([1, 2, 3]) == 7

    def test_scaled_expr(self):
        expr = AffineScaledExpr(position=0, scale=4, offset=2)
        assert expr.evaluate([3]) == 14

    def test_negative_dim_position_rejected(self):
        with pytest.raises(ValueError):
            AffineDimExpr(-1)

    def test_used_dims(self):
        assert AffineDimExpr(2).used_dims() == frozenset({2})
        assert AffineConstantExpr(0).used_dims() == frozenset()


class TestAffineMap:
    def test_identity_map(self):
        identity = AffineMap.identity(3)
        assert identity.is_identity()
        assert identity.evaluate([4, 5, 6]) == (4, 5, 6)

    def test_permutation_map(self):
        perm = AffineMap.permutation([1, 0])
        assert perm.is_permutation()
        assert not perm.is_identity()
        assert perm.evaluate([3, 7]) == (7, 3)

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            AffineMap.permutation([0, 0])

    def test_projection_drops_dims(self):
        proj = AffineMap.projection(3, [2, 0])
        assert proj.evaluate([1, 2, 3]) == (3, 1)
        assert proj.is_projected_permutation()
        assert proj.unused_dims() == frozenset({1})

    def test_out_of_range_dim_rejected(self):
        with pytest.raises(ValueError):
            AffineMap.from_results(2, [0, 2])

    def test_evaluate_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            AffineMap.identity(2).evaluate([1, 2, 3])

    def test_result_dim_position(self):
        amap = AffineMap.from_results(3, [2, 0])
        assert amap.result_dim_position(0) == 2
        assert amap.result_dim_position(1) == 0

    def test_result_dim_position_on_constant_raises(self):
        amap = AffineMap(2, (AffineConstantExpr(0),))
        with pytest.raises(TypeError):
            amap.result_dim_position(0)

    def test_compose_permutation_relabels_dims(self):
        amap = AffineMap.from_results(2, [1, 0])
        relabeled = amap.compose_permutation([1, 0])
        assert relabeled.evaluate([3, 7]) == (3, 7)

    def test_drop_results(self):
        amap = AffineMap.identity(3)
        dropped = amap.drop_results([1])
        assert dropped.num_results == 2
        assert dropped.evaluate([1, 2, 3]) == (1, 3)

    def test_str_rendering(self):
        amap = AffineMap.from_results(2, [1, 0])
        assert str(amap) == "(d0, d1) -> (d1, d0)"

    def test_paper_figure5_map_semantics(self):
        """The (d0,d1,d2)->(d2,d0) map of Figure 5(c) drops d1 (re-access)."""
        amap = AffineMap.from_results(3, [2, 0])
        assert amap.unused_dims() == frozenset({1})
        assert amap.evaluate([2, 1, 4]) == (4, 2)
