"""Tests for the FPGA platform models (Table 6)."""

import pytest

from repro.platform.fpga import (
    AMD_U280,
    AMD_U280_DFX,
    AMD_U55C,
    FP16,
    FPGA_PLATFORMS,
    W4A8,
)
from repro.resource.memory_alloc import MemoryKind


class TestTable6Values:
    def test_u55c_matches_table6(self):
        assert AMD_U55C.frequency_mhz == 250.0
        assert AMD_U55C.peak_int8_tops == 24.5
        assert AMD_U55C.hbm_bandwidth_gbs == 460.0
        assert AMD_U55C.hbm_capacity_gb == 16.0
        assert AMD_U55C.onchip_memory_mb == 41.0
        assert AMD_U55C.tdp_watts == 150.0
        assert AMD_U55C.process_node_nm == 16
        assert AMD_U55C.quantization == W4A8

    def test_u280_allo_matches_table6(self):
        assert AMD_U280.tdp_watts == 225.0
        assert AMD_U280.hbm_capacity_gb == 8.0
        assert AMD_U280.frequency_mhz == 250.0

    def test_u280_dfx_uses_fp16_at_200mhz(self):
        assert AMD_U280_DFX.frequency_mhz == 200.0
        assert AMD_U280_DFX.quantization == FP16

    def test_registry(self):
        assert FPGA_PLATFORMS["u55c"] is AMD_U55C


class TestDerivedQuantities:
    def test_cycle_time(self):
        assert AMD_U55C.cycle_time_ns == pytest.approx(4.0)

    def test_bandwidth_per_cycle(self):
        expected = 460e9 / 250e6
        assert AMD_U55C.hbm_bandwidth_bytes_per_cycle == pytest.approx(expected)

    def test_peak_macs_per_cycle(self):
        expected = 24.5e12 / 2 / 250e6
        assert AMD_U55C.peak_macs_per_cycle == pytest.approx(expected)

    def test_cycles_seconds_roundtrip(self):
        cycles = 1e6
        assert AMD_U55C.seconds_to_cycles(
            AMD_U55C.cycles_to_seconds(cycles)) == pytest.approx(cycles)

    def test_memory_resources_cover_onchip_capacity(self):
        resources = AMD_U55C.memory_resources()
        kinds = {r.kind for r in resources}
        assert kinds == {MemoryKind.URAM, MemoryKind.BRAM, MemoryKind.LUTRAM}
        total = sum(r.total_bytes for r in resources)
        assert total == pytest.approx(AMD_U55C.onchip_memory_bytes, rel=0.05)

    def test_quantization_name(self):
        assert W4A8.name == "W4A8"
        assert FP16.name == "W16A16"
