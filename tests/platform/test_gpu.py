"""Tests for the GPU roofline models."""

import pytest

from repro.platform.gpu import GPU_PLATFORMS, NVIDIA_2080TI, NVIDIA_A100


class TestTable6Values:
    def test_a100_specs(self):
        assert NVIDIA_A100.peak_int8_tops == 624.0
        assert NVIDIA_A100.memory_bandwidth_gbs == 1935.0
        assert NVIDIA_A100.memory_capacity_gb == 80.0
        assert NVIDIA_A100.tdp_watts == 300.0
        assert NVIDIA_A100.process_node_nm == 7

    def test_2080ti_specs(self):
        assert NVIDIA_2080TI.peak_int8_tops == 215.2
        assert NVIDIA_2080TI.memory_bandwidth_gbs == 616.0
        assert NVIDIA_2080TI.tdp_watts == 250.0

    def test_registry(self):
        assert GPU_PLATFORMS["a100"] is NVIDIA_A100


class TestRoofline:
    def test_memory_bound_op(self):
        """A GEMV-like op with few FLOPs is limited by bandwidth."""
        time = NVIDIA_A100.op_time_seconds(flops=1e6, bytes_moved=1e9,
                                           num_kernels=0)
        memory_time = 1e9 / (NVIDIA_A100.effective_bandwidth_gbs * 1e9)
        assert time == pytest.approx(memory_time)

    def test_compute_bound_op(self):
        """A big GEMM is limited by TOPS."""
        time = NVIDIA_A100.op_time_seconds(flops=1e13, bytes_moved=1e6,
                                           num_kernels=0)
        compute_time = 1e13 / (NVIDIA_A100.effective_tops * 1e12)
        assert time == pytest.approx(compute_time)

    def test_launch_overhead_added(self):
        base = NVIDIA_A100.op_time_seconds(1e6, 1e6, num_kernels=0)
        with_launches = NVIDIA_A100.op_time_seconds(1e6, 1e6, num_kernels=10)
        assert with_launches == pytest.approx(
            base + 10 * NVIDIA_A100.kernel_launch_us * 1e-6)

    def test_a100_faster_than_2080ti(self):
        flops, data = 1e12, 1e9
        assert NVIDIA_A100.op_time_seconds(flops, data) \
            < NVIDIA_2080TI.op_time_seconds(flops, data)

    def test_average_power_between_idle_and_tdp(self):
        for fraction in (0.0, 0.5, 1.0):
            power = NVIDIA_A100.average_power_watts(fraction)
            assert NVIDIA_A100.tdp_watts * NVIDIA_A100.idle_power_fraction \
                <= power <= NVIDIA_A100.tdp_watts

    def test_power_clamps_fraction(self):
        assert NVIDIA_A100.average_power_watts(2.0) == NVIDIA_A100.tdp_watts
        assert NVIDIA_A100.average_power_watts(-1.0) == pytest.approx(
            NVIDIA_A100.tdp_watts * NVIDIA_A100.idle_power_fraction)
