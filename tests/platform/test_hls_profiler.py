"""Tests for the analytical HLS profiler."""

import pytest

from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import fuse_kernels
from repro.dataflow.tiling import TilingConfig
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.platform.fpga import AMD_U55C
from repro.platform.hls_profiler import HlsProfiler


def matmul_dataflow(unroll=16):
    builder = GraphBuilder("net")
    x = builder.input((64, 64), INT8)
    w = builder.weight((64, 64), INT8)
    builder.output(builder.matmul(x, w, name="mm"))
    configs = {"mm": TilingConfig([16, 16, 16], unroll_factor=unroll)}
    dataflow = convert_to_dataflow(builder.build(), configs)
    fuse_kernels(dataflow, c_max=1e9)
    return dataflow


class TestProfileKernel:
    def test_profile_has_positive_metrics(self):
        dataflow = matmul_dataflow()
        profiler = HlsProfiler(AMD_U55C)
        profile = profiler.profile_kernel(dataflow.kernel_by_name("mm"))
        assert profile.pipeline_ii >= 1.0
        assert profile.initial_delay > profile.pipeline_ii
        assert profile.latency >= profile.initial_delay
        assert profile.dsps > 0

    def test_more_unroll_means_lower_ii(self):
        profiler = HlsProfiler(AMD_U55C)
        slow = profiler.profile_kernel(matmul_dataflow(unroll=1).kernel_by_name("mm"))
        fast = profiler.profile_kernel(matmul_dataflow(unroll=64).kernel_by_name("mm"))
        assert fast.pipeline_ii < slow.pipeline_ii
        assert fast.dsps > slow.dsps

    def test_memory_share_limits_parameter_kernels(self):
        profiler = HlsProfiler(AMD_U55C)
        kernel = matmul_dataflow(unroll=256).kernel_by_name("mm")
        full = profiler.profile_kernel(kernel, memory_share=1.0)
        starved = profiler.profile_kernel(kernel, memory_share=0.01)
        assert starved.pipeline_ii >= full.pipeline_ii

    def test_external_kernel_returns_empty_profile(self):
        from repro.dataflow.structure import DataflowKernel
        profiler = HlsProfiler(AMD_U55C)
        profile = profiler.profile_kernel(DataflowKernel("ext", source_op=None))
        assert profile.latency == 0.0


class TestProfileGraph:
    def test_every_kernel_gets_a_timing(self, gpt2_compiled):
        timings = gpt2_compiled.kernel_timings
        names = {k.name for k in gpt2_compiled.dataflow_graph.kernels}
        assert set(timings) == names
        for timing in timings.values():
            assert timing.pipeline_ii >= 1.0
            assert timing.total_tokens >= 1

    def test_profile_written_back_to_kernels(self, gpt2_compiled):
        for kernel in gpt2_compiled.dataflow_graph.kernels:
            assert kernel.profile.latency > 0


class TestVendorToolRuntime:
    def test_hls_time_dominates_profiling_time(self, gpt2_compiled):
        profiler = HlsProfiler(AMD_U55C)
        graph = gpt2_compiled.dataflow_graph
        hls = profiler.estimate_hls_synthesis_seconds(graph)
        prof = profiler.estimate_profiling_seconds(graph)
        assert hls > prof > 0

    def test_vendor_time_far_exceeds_compile_time(self, gpt2_compiled):
        """Figure 10b: HLS dominates, StreamTensor compilation is a tiny part."""
        profiler = HlsProfiler(AMD_U55C)
        hls = profiler.estimate_hls_synthesis_seconds(gpt2_compiled.dataflow_graph)
        compile_seconds = sum(gpt2_compiled.report.stage_seconds.values())
        assert hls > 50 * compile_seconds

    def test_packing_time_scales_with_parameters(self):
        profiler = HlsProfiler(AMD_U55C)
        graph = matmul_dataflow()
        small = profiler.estimate_parameter_packing_seconds(graph, 1e6)
        large = profiler.estimate_parameter_packing_seconds(graph, 1e9)
        assert large > small
