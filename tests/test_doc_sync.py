"""Doc-sync guard: the README flag tables must track the CLI exactly.

``repro serve-sim`` and ``repro serve-cluster`` document their flags in
README.md tables.  Tables rot silently — a new argparse flag lands, the
table is forgotten, and the docs claim a smaller CLI than ships.  These
tests parse the *real* argparse parsers and the README markdown and assert
both directions:

* every flag the parser accepts appears in the command's README section;
* every ``--flag`` token the section mentions is one the parser accepts
  (no documented-but-removed ghosts).

Runs in the tier-1 suite, so CI fails the moment either side drifts.
"""

import re
from pathlib import Path

import pytest

from repro.cli import _build_parser

README = Path(__file__).resolve().parent.parent / "README.md"

# Flags argparse adds on its own; never documented in the tables.
IGNORED = {"-h", "--help"}


def parser_flags(command: str) -> set:
    """The option strings one subcommand accepts, from the live parser."""
    import argparse

    parser = _build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    sub = subparsers.choices[command]
    flags = set()
    for action in sub._actions:
        flags.update(action.option_strings)
    return {flag for flag in flags
            if flag.startswith("--") and flag not in IGNORED}


def readme_section(command: str) -> str:
    """The README slice from the command's flag-table heading to the next
    table's end — the region its flags must be documented in."""
    text = README.read_text()
    start = text.index(f"`{command}` flags:")
    # The section ends at the first blank-line-then-non-table paragraph
    # after the table starts.
    tail = text[start:]
    lines = tail.splitlines()
    section = [lines[0]]
    in_table = False
    for line in lines[1:]:
        if line.startswith("|"):
            in_table = True
        elif in_table:
            break
        section.append(line)
    return "\n".join(section)


def readme_flags(command: str) -> set:
    """Every ``--flag`` token the command's README section mentions."""
    return set(re.findall(r"--[a-z][a-z0-9-]*",
                          readme_section(command)))


# Vacuity floor per documented command: the sync tests must keep
# comparing non-trivial sets (the analysis CLI is genuinely small).
MIN_FLAGS = {"serve-sim": 10, "serve-cluster": 10, "trace": 4,
             "reproduce": 2}


@pytest.mark.parametrize("command", sorted(MIN_FLAGS))
class TestFlagTablesInSync:
    def test_every_cli_flag_documented(self, command):
        missing = parser_flags(command) - readme_flags(command)
        assert not missing, (
            f"README.md's `{command}` flag table is missing "
            f"{sorted(missing)} — document new flags where users look "
            "for them")

    def test_no_ghost_flags_documented(self, command):
        ghosts = readme_flags(command) - parser_flags(command)
        assert not ghosts, (
            f"README.md's `{command}` section documents {sorted(ghosts)} "
            "which the CLI no longer accepts — prune the table")

    def test_parser_and_readme_nonempty(self, command):
        """Regime check: an empty set would make the sync tests pass
        vacuously."""
        assert len(parser_flags(command)) >= MIN_FLAGS[command]
        assert len(readme_flags(command)) >= MIN_FLAGS[command]
