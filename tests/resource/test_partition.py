"""Tests for multi-die graph partitioning."""

import pytest

from repro.resource.partition import (
    PartitionResult,
    PartitionTask,
    partition_graph,
    partition_tasks,
)


def chain_tasks(n=6, resource=10.0):
    tasks = []
    for index in range(n):
        preds = (f"t{index - 1}",) if index else ()
        tasks.append(PartitionTask(f"t{index}", resource, preds))
    return tasks


class TestPartitionTasks:
    def test_single_die_trivial(self):
        result = partition_tasks(chain_tasks(), num_dies=1)
        assert result.method == "trivial"
        assert set(result.assignment.values()) == {0}
        assert result.cut_edges == 0

    def test_every_task_assigned(self):
        result = partition_tasks(chain_tasks(), num_dies=3)
        assert len(result.assignment) == 6
        assert all(0 <= die < 3 for die in result.assignment.values())

    def test_chain_minimises_cuts(self):
        result = partition_tasks(chain_tasks(6), num_dies=2)
        # A pipeline of 6 equal tasks splits into two halves with one cut.
        assert result.cut_edges <= 2
        loads = result.die_loads(chain_tasks(6))
        assert max(loads) <= 2 * min(loads) + 10.0

    def test_capacity_respected_by_greedy(self):
        tasks = chain_tasks(8, resource=10.0)
        result = partition_tasks(tasks, num_dies=4, capacity=25.0, prefer_ilp=False)
        loads = result.die_loads(tasks)
        assert all(load <= 25.0 + 1e-9 for load in loads)

    def test_invalid_num_dies(self):
        with pytest.raises(ValueError):
            partition_tasks(chain_tasks(), num_dies=0)

    def test_empty_tasks(self):
        result = partition_tasks([], num_dies=2)
        assert result.assignment == {}

    def test_ilp_and_greedy_agree_on_small_chain(self):
        tasks = chain_tasks(4)
        ilp = partition_tasks(tasks, num_dies=2, prefer_ilp=True)
        greedy = partition_tasks(tasks, num_dies=2, prefer_ilp=False)
        assert ilp.cut_edges <= greedy.cut_edges
        if ilp.method == "ilp":
            assert ilp.objective <= greedy.objective + 1e-9

    def test_objective_combines_cut_and_imbalance(self):
        tasks = chain_tasks(4)
        result = partition_tasks(tasks, num_dies=2, comm_weight=1.0,
                                 balance_weight=4.0)
        assert result.objective == pytest.approx(
            result.cut_edges + 4.0 * result.imbalance)


class TestPartitionGraph:
    def test_compiled_graph_partition(self, gpt2_compiled):
        result = gpt2_compiled.partition
        graph = gpt2_compiled.dataflow_graph
        assert result is not None
        assert len(result.assignment) == len(graph.kernels)
        for kernel in graph.kernels:
            assert kernel.die_assignment is not None
            assert 0 <= kernel.die_assignment < result.num_dies

    def test_partition_graph_two_dies(self, gpt2_compiled):
        graph = gpt2_compiled.dataflow_graph
        result = partition_graph(graph, num_dies=2)
        assert result.num_dies == 2
        assert set(result.assignment.values()) <= {0, 1}
