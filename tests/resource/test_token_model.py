"""Tests for the piecewise-linear token behaviour model (Section 5.3.1-5.3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resource.token_model import (
    EqualizationStrategy,
    KernelTiming,
    equalize_timings,
    max_tokens_from_delay,
    simulate_max_tokens,
    steady_state_interval,
)


class TestKernelTiming:
    def test_latency_formula(self):
        timing = KernelTiming("k", initial_delay=3, pipeline_ii=2, total_tokens=5)
        assert timing.latency == 3 + 4 * 2

    def test_tokens_produced_is_piecewise(self):
        timing = KernelTiming("k", initial_delay=3, pipeline_ii=1, total_tokens=5)
        assert timing.tokens_produced(2.9) == 0
        assert timing.tokens_produced(3.0) == 1
        assert timing.tokens_produced(5.0) == 3
        assert timing.tokens_produced(100.0) == 5

    def test_throughput(self):
        assert KernelTiming("k", 0, 4, 10).throughput == 0.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KernelTiming("k", 0, 0, 5)
        with pytest.raises(ValueError):
            KernelTiming("k", -1, 1, 5)
        with pytest.raises(ValueError):
            KernelTiming("k", 0, 1, -5)

    def test_scaled_to_throughput_only_slows_down(self):
        timing = KernelTiming("k", 0, 2, 10)
        assert timing.scaled_to_throughput(0.25).pipeline_ii == 4
        assert timing.scaled_to_throughput(10.0).pipeline_ii == 2


class TestFigure8Example:
    """The worked example of Figure 8(a): source II=1 D=3, target II=2 D=1."""

    def test_max_tokens_is_three(self):
        source = KernelTiming("source", initial_delay=3, pipeline_ii=1, total_tokens=5)
        target = KernelTiming("target", initial_delay=1, pipeline_ii=2, total_tokens=5)
        # The target starts as soon as the first token arrives (delay = D_src).
        analytic = max_tokens_from_delay(source, target, delay=3)
        simulated = simulate_max_tokens(source, target, delay=3)
        assert analytic == 3
        # The analytic size is a safe upper bound on the observed occupancy.
        assert 2 <= simulated <= analytic


class TestMaxTokensEquations:
    def test_fast_source_equation1(self):
        source = KernelTiming("s", 0, 1, 100)
        target = KernelTiming("t", 0, 4, 100)
        analytic = max_tokens_from_delay(source, target, delay=0)
        simulated = simulate_max_tokens(source, target, delay=0)
        assert analytic == pytest.approx(simulated, abs=1)
        assert analytic >= simulated

    def test_slow_source_equation2(self):
        source = KernelTiming("s", 2, 4, 50)
        target = KernelTiming("t", 0, 1, 50)
        for delay in (2, 10, 30):
            assert max_tokens_from_delay(source, target, delay=delay) \
                == pytest.approx(simulate_max_tokens(source, target, delay=delay), abs=1)

    def test_max_tokens_monotonic_in_delay(self):
        source = KernelTiming("s", 2, 2, 64)
        target = KernelTiming("t", 0, 3, 64)
        values = [max_tokens_from_delay(source, target, d) for d in (2, 10, 50, 200)]
        assert values == sorted(values)

    def test_never_exceeds_total_tokens(self):
        source = KernelTiming("s", 0, 1, 16)
        target = KernelTiming("t", 0, 100, 16)
        assert max_tokens_from_delay(source, target, delay=1e6) <= 16

    def test_zero_tokens(self):
        source = KernelTiming("s", 0, 1, 0)
        target = KernelTiming("t", 0, 1, 0)
        assert max_tokens_from_delay(source, target, 0) == 0

    @given(
        d_src=st.integers(0, 20), ii_src=st.integers(1, 8),
        d_tgt=st.integers(0, 20), ii_tgt=st.integers(1, 8),
        tokens=st.integers(1, 40), extra_delay=st.integers(0, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_analytic_upper_bounds_simulation(self, d_src, ii_src, d_tgt, ii_tgt,
                                              tokens, extra_delay):
        """A FIFO sized by the analytic equations never overflows in the
        discrete-time reference simulation."""
        source = KernelTiming("s", d_src, ii_src, tokens)
        target = KernelTiming("t", d_tgt, ii_tgt, tokens)
        delay = d_src + extra_delay
        analytic = max_tokens_from_delay(source, target, delay)
        simulated = simulate_max_tokens(source, target, delay)
        assert analytic >= simulated


class TestEqualization:
    def make_timings(self):
        return [
            KernelTiming("fast", 0, 1, 32),
            KernelTiming("medium", 0, 2, 32),
            KernelTiming("slow", 0, 8, 32),
        ]

    def test_normal_strategy_keeps_timings(self):
        timings = self.make_timings()
        assert equalize_timings(timings, EqualizationStrategy.NORMAL) == timings

    def test_conservative_matches_slowest_throughput(self):
        equalized = equalize_timings(self.make_timings(),
                                     EqualizationStrategy.CONSERVATIVE)
        assert all(t.pipeline_ii == 8 for t in equalized)

    def test_conservative_reduces_fifo_requirements(self):
        """The Conservative strategy trades latency for smaller FIFOs."""
        fast = KernelTiming("fast", 0, 1, 64)
        slow = KernelTiming("slow", 0, 8, 64)
        normal_depth = max_tokens_from_delay(fast, slow, delay=0)
        eq_fast, eq_slow = equalize_timings([fast, slow],
                                            EqualizationStrategy.CONSERVATIVE)
        conservative_depth = max_tokens_from_delay(eq_fast, eq_slow, delay=0)
        assert conservative_depth <= normal_depth

    def test_steady_state_interval(self):
        assert steady_state_interval(self.make_timings()) == 8
        assert steady_state_interval([]) == 0.0
