"""Tests for LP-based FIFO sizing (Section 5.3.4, Figure 8(f))."""

import pytest

from repro.resource.fifo_sizing import (
    FifoSizingResult,
    SizingEdge,
    size_fifos,
    size_graph_fifos,
    sizing_edges_from_graph,
    solve_delays,
)
from repro.resource.token_model import EqualizationStrategy, KernelTiming


def figure8f_setup():
    """Kernel0 feeds Kernel1 and Kernel2; Kernel1 feeds Kernel2."""
    timings = {
        "kernel0": KernelTiming("kernel0", initial_delay=10, pipeline_ii=1,
                                total_tokens=32),
        "kernel1": KernelTiming("kernel1", initial_delay=20, pipeline_ii=1,
                                total_tokens=32),
        "kernel2": KernelTiming("kernel2", initial_delay=5, pipeline_ii=1,
                                total_tokens=32),
    }
    edges = [
        SizingEdge("kernel0", "kernel1", total_tokens=32),
        SizingEdge("kernel1", "kernel2", total_tokens=32),
        SizingEdge("kernel0", "kernel2", total_tokens=32),
    ]
    return edges, timings


class TestSolveDelays:
    def test_figure8f_constraints(self):
        """delay[0][1] >= D[0], delay[1][2] >= D[1], delay[0][2] >= D[0]+D[1]."""
        edges, timings = figure8f_setup()
        delays, status = solve_delays(edges, timings)
        assert status == "optimal"
        assert delays[("kernel0", "kernel1")] >= 10
        assert delays[("kernel1", "kernel2")] >= 20
        assert delays[("kernel0", "kernel2")] >= 30

    def test_objective_is_minimal(self):
        """The LP pushes every delay to its lower bound."""
        edges, timings = figure8f_setup()
        delays, _ = solve_delays(edges, timings)
        assert delays[("kernel0", "kernel1")] == pytest.approx(10)
        assert delays[("kernel1", "kernel2")] == pytest.approx(20)
        assert delays[("kernel0", "kernel2")] == pytest.approx(30)

    def test_empty_edges(self):
        delays, status = solve_delays([], {})
        assert delays == {} and status == "empty"

    def test_cycle_rejected(self):
        timings = {
            "a": KernelTiming("a", 1, 1, 4),
            "b": KernelTiming("b", 1, 1, 4),
        }
        edges = [SizingEdge("a", "b", 4), SizingEdge("b", "a", 4)]
        with pytest.raises(ValueError, match="acyclic"):
            solve_delays(edges, timings)


class TestSizeFifos:
    def test_reconvergent_path_gets_deeper_fifo(self):
        """The FIFO on the short path must buffer the long path's head start."""
        edges, timings = figure8f_setup()
        result = size_fifos(edges, timings)
        assert result.depth_of("kernel0", "kernel2") \
            > result.depth_of("kernel1", "kernel2")

    def test_depths_are_at_least_two(self):
        edges, timings = figure8f_setup()
        result = size_fifos(edges, timings)
        assert all(depth >= 2 for depth in result.depths.values())

    def test_conservative_never_larger_than_normal(self):
        timings = {
            "fast": KernelTiming("fast", 2, 1, 64),
            "slow": KernelTiming("slow", 2, 8, 64),
            "sink": KernelTiming("sink", 2, 8, 64),
        }
        edges = [SizingEdge("fast", "slow", 64), SizingEdge("slow", "sink", 64)]
        normal = size_fifos(edges, timings, EqualizationStrategy.NORMAL)
        conservative = size_fifos(edges, timings, EqualizationStrategy.CONSERVATIVE)
        assert conservative.total_depth <= normal.total_depth

    def test_missing_timing_raises(self):
        edges, timings = figure8f_setup()
        del timings["kernel1"]
        with pytest.raises(KeyError):
            size_fifos(edges, timings)

    def test_total_fifo_bytes_accumulates(self):
        edges, timings = figure8f_setup()
        result = size_fifos(edges, timings)
        assert result.total_fifo_bytes == pytest.approx(
            sum(result.depths[(e.producer, e.consumer)] * e.token_bytes
                for e in edges))


class TestGraphIntegration:
    def test_size_graph_fifos_applies_depths(self, gpt2_compiled):
        graph = gpt2_compiled.dataflow_graph
        for edge in graph.stream_edges():
            assert edge.fifo_depth is not None
            assert edge.fifo_depth >= 2

    def test_sizing_edges_extraction(self, gpt2_compiled):
        graph = gpt2_compiled.dataflow_graph
        edges = sizing_edges_from_graph(graph)
        assert len(edges) == len([e for e in graph.stream_edges()
                                  if e.producer and e.consumer])
        assert all(e.total_tokens >= 1 for e in edges)

    def test_lp_status_recorded(self, gpt2_compiled):
        assert gpt2_compiled.fifo_sizing.lp_status in ("optimal", "no-stream-edges")
