"""Tests for the LUTRAM/BRAM/URAM memory allocation heuristic."""

import pytest

from repro.resource.memory_alloc import (
    BufferRequest,
    MemoryKind,
    MemoryResource,
    allocate_memory,
)


def standard_resources():
    return [
        MemoryResource(MemoryKind.URAM, 288 * 1024, 100),
        MemoryResource(MemoryKind.BRAM, 36 * 1024, 200),
        MemoryResource(MemoryKind.LUTRAM, 1024, 500),
    ]


class TestAllocateMemory:
    def test_large_buffers_prefer_uram(self):
        allocation = allocate_memory([BufferRequest("big", 200_000)],
                                     standard_resources())
        assert allocation.placements["big"] is MemoryKind.URAM

    def test_medium_buffers_prefer_bram(self):
        allocation = allocate_memory([BufferRequest("mid", 4_000)],
                                     standard_resources())
        assert allocation.placements["mid"] is MemoryKind.BRAM

    def test_small_buffers_prefer_lutram(self):
        allocation = allocate_memory([BufferRequest("tiny", 64)],
                                     standard_resources())
        assert allocation.placements["tiny"] is MemoryKind.LUTRAM

    def test_spill_to_next_class_when_exhausted(self):
        resources = [
            MemoryResource(MemoryKind.URAM, 288 * 1024, 1),
            MemoryResource(MemoryKind.BRAM, 36 * 1024, 100),
            MemoryResource(MemoryKind.LUTRAM, 1024, 10),
        ]
        requests = [BufferRequest(f"b{i}", 100_000) for i in range(3)]
        allocation = allocate_memory(requests, resources)
        kinds = set(allocation.placements.values())
        assert MemoryKind.BRAM in kinds
        assert allocation.fits

    def test_unplaceable_buffers_reported(self):
        resources = [MemoryResource(MemoryKind.BRAM, 36 * 1024, 1)]
        requests = [BufferRequest("huge", 10_000_000)]
        allocation = allocate_memory(requests, resources)
        assert allocation.spilled == ["huge"]
        assert not allocation.fits

    def test_largest_first_priority(self):
        """When URAM is scarce the biggest buffer claims it first."""
        resources = [
            MemoryResource(MemoryKind.URAM, 288 * 1024, 14),
            MemoryResource(MemoryKind.BRAM, 36 * 1024, 1000),
        ]
        requests = [BufferRequest("small", 20_000), BufferRequest("big", 500_000)]
        allocation = allocate_memory(requests, resources)
        assert allocation.placements["big"] is MemoryKind.URAM
        assert allocation.placements["small"] is MemoryKind.BRAM

    def test_utilization_report(self):
        resources = standard_resources()
        allocation = allocate_memory([BufferRequest("b", 288 * 1024 / 8)], resources)
        util = allocation.utilization(resources)
        assert util[MemoryKind.URAM] == pytest.approx(1 / 100)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BufferRequest("bad", -1.0)

    def test_compiled_design_fits_on_u55c(self, gpt2_compiled):
        """The fused GPT-2 decode block must fit the U55C's on-chip memory."""
        assert gpt2_compiled.memory_allocation is not None
        assert gpt2_compiled.memory_allocation.fits
