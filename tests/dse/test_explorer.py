"""Tests for the black-box tiling-space explorer."""

import pytest

from repro.dse.explorer import (
    BlackBoxOptimizer,
    build_tiling_space,
    default_search_space,
    explore_tiling_space,
)
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


def small_graph():
    builder = GraphBuilder("net")
    x = builder.input((64, 64), INT8)
    w = builder.weight((64, 64), INT8)
    builder.output(builder.gelu(builder.matmul(x, w)))
    return builder.build()


class TestBlackBoxOptimizer:
    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            BlackBoxOptimizer({})

    def test_finds_known_minimum(self):
        space = {"x": [1, 2, 4, 8, 16], "y": [1, 2, 4]}
        optimizer = BlackBoxOptimizer(space, seed=3)

        def objective(params):
            return (params["x"] - 4) ** 2 + params["y"], {}

        result = optimizer.optimize(objective, n_trials=15)
        assert result.best_params["x"] == 4
        assert result.best_params["y"] == 1

    def test_deterministic_given_seed(self):
        space = {"x": [1, 2, 3, 4, 5, 6, 7, 8]}

        def objective(params):
            return float(params["x"]), {}

        first = BlackBoxOptimizer(space, seed=7).optimize(objective, n_trials=5)
        second = BlackBoxOptimizer(space, seed=7).optimize(objective, n_trials=5)
        assert [t.params for t in first.trials] == [t.params for t in second.trials]

    def test_no_trials_raises_on_best(self):
        from repro.dse.explorer import StudyResult
        with pytest.raises(ValueError):
            StudyResult().best_trial


class TestSearchSpace:
    def test_default_space_has_both_axes(self):
        space = default_search_space()
        assert "default_tile_size" in space
        assert "overall_unroll_size" in space

    def test_limits_respected(self):
        space = default_search_space(max_tile=16, max_unroll=32)
        assert max(space["default_tile_size"]) <= 16
        assert max(space["overall_unroll_size"]) <= 32


class TestBuildTilingSpace:
    def test_full_population(self):
        space = build_tiling_space(small_graph(), 16, 64)
        for node in space.nodes:
            assert node.tile_sizes
            assert node.unroll_factor >= 1
            assert node.tile_loop_order is not None

    def test_unroll_budget_respected(self):
        space = build_tiling_space(small_graph(), 16, 32)
        assert space.total_unroll() <= 32


class TestExploreTilingSpace:
    def test_exploration_returns_best_space_and_study(self):
        graph = small_graph()

        def feedback(space):
            return {"converter_bytes": 0.0}

        best, study = explore_tiling_space(graph, feedback, n_trials=4, seed=1)
        assert best.nodes
        assert len(study.trials) >= 3
        assert study.best_trial.objective <= max(t.objective for t in study.trials)

    def test_memory_penalty_steers_away_from_overflow(self):
        graph = small_graph()

        def feedback(space):
            # Pretend large tiles blow the converter budget.
            over = space.default_tile_size >= 64
            return {"converter_bytes": 1e9 if over else 1e3}

        best, _study = explore_tiling_space(graph, feedback, n_trials=6,
                                            memory_budget_bytes=1e6, seed=0)
        assert best.default_tile_size < 64
