"""Tests for the loop-permutation heuristics."""

from repro.dse.permutation import (
    apply_permutation_heuristic,
    innermost_is_parallel,
    reduction_outward_permutation,
    streaming_tile_loop_order,
)
from repro.dse.tiling_space import TilingSpace
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.ir.ops import IteratorType


def space_with_matmul():
    builder = GraphBuilder()
    x = builder.input((32, 32), INT8)
    w = builder.weight((32, 32), INT8)
    builder.output(builder.softmax(builder.matmul(x, w, name="mm"), name="sm"))
    return TilingSpace.from_graph(builder.build())


class TestReductionOutward:
    def test_reduction_dims_come_first(self):
        space = space_with_matmul()
        node = space.node("mm")
        perm = reduction_outward_permutation(node)
        assert node.loop_types[perm[0]] is IteratorType.REDUCTION
        assert node.loop_types[perm[-1]] is IteratorType.PARALLEL

    def test_relative_order_of_parallel_dims_preserved(self):
        space = space_with_matmul()
        perm = reduction_outward_permutation(space.node("mm"))
        parallel_positions = [p for p in perm
                              if space.node("mm").loop_types[p] is IteratorType.PARALLEL]
        assert parallel_positions == sorted(parallel_positions)


class TestStreamingOrder:
    def test_parallel_dims_come_first(self):
        space = space_with_matmul()
        node = space.node("mm")
        order = streaming_tile_loop_order(node)
        assert node.loop_types[order[0]] is IteratorType.PARALLEL
        assert node.loop_types[order[-1]] is IteratorType.REDUCTION

    def test_orders_are_permutations(self):
        space = space_with_matmul()
        for node in space.nodes:
            assert sorted(streaming_tile_loop_order(node)) == list(range(len(node.loop_types)))
            assert sorted(reduction_outward_permutation(node)) == list(range(len(node.loop_types)))


class TestApplyHeuristic:
    def test_sets_both_orders_on_all_nodes(self):
        space = space_with_matmul()
        apply_permutation_heuristic(space)
        for node in space.nodes:
            assert node.permutation is not None
            assert node.tile_loop_order is not None

    def test_innermost_is_parallel_postcondition(self):
        space = space_with_matmul()
        apply_permutation_heuristic(space)
        for node in space.nodes:
            # The intra-tile pipeline keeps a parallel loop innermost.
            assert innermost_is_parallel(node)

    def test_pure_elementwise_nodes_are_untouched_semantically(self):
        builder = GraphBuilder()
        x = builder.input((8, 8), INT8)
        builder.output(builder.gelu(x, name="g"))
        space = TilingSpace.from_graph(builder.build())
        apply_permutation_heuristic(space)
        assert space.node("g").tile_loop_order == [0, 1]
