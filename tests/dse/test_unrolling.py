"""Tests for intensity-driven unrolling (max-heap latency balancing)."""

import math

import pytest

from repro.dse.tiling_space import TilingSpace
from repro.dse.unrolling import (
    intensity_driven_unrolling,
    latency_balance_ratio,
    max_unroll_for,
)
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


def unbalanced_graph():
    """One huge matmul and one tiny elementwise op."""
    builder = GraphBuilder("net")
    x = builder.input((128, 128), INT8)
    w = builder.weight((128, 128), INT8)
    y = builder.matmul(x, w, name="heavy")
    z = builder.gelu(y, name="light")
    builder.output(z)
    return builder.build()


def make_space(budget=64, tile=16):
    space = TilingSpace.from_graph(unbalanced_graph(), default_tile_size=tile,
                                   overall_unroll_size=budget)
    space.apply_naive_tiling()
    return space


class TestIntensityDrivenUnrolling:
    def test_budget_is_respected(self):
        space = make_space(budget=64)
        intensity_driven_unrolling(space)
        assert space.total_unroll() <= 64

    def test_slowest_kernel_gets_most_unrolling(self):
        space = make_space(budget=64)
        intensity_driven_unrolling(space)
        assert space.node("heavy").unroll_factor > space.node("light").unroll_factor

    def test_balancing_improves_latency_ratio(self):
        space = make_space(budget=256)
        before = latency_balance_ratio(space)
        intensity_driven_unrolling(space)
        after = latency_balance_ratio(space)
        assert after <= before

    def test_decisions_record_progress(self):
        space = make_space(budget=32)
        decisions = intensity_driven_unrolling(space)
        assert decisions
        for decision in decisions:
            assert decision.new_factor > decision.old_factor
            assert decision.latency_after <= decision.latency_before

    def test_unroll_never_exceeds_tile_work(self):
        space = make_space(budget=10_000, tile=4)
        intensity_driven_unrolling(space)
        for node in space.nodes:
            assert node.unroll_factor <= max_unroll_for(node)

    def test_empty_space_is_a_noop(self):
        space = TilingSpace(nodes=[])
        assert intensity_driven_unrolling(space) == []

    def test_doubling_steps(self):
        space = make_space(budget=6)
        decisions = intensity_driven_unrolling(space, step_factor=2)
        # First step doubles 1 -> 2 on the heavy kernel.
        assert decisions[0].kernel == "heavy"
        assert decisions[0].new_factor == 2


class TestMaxUnroll:
    def test_max_unroll_is_tile_volume(self):
        space = make_space(tile=8)
        node = space.node("heavy")
        assert max_unroll_for(node) == math.prod(node.tile_sizes)

    def test_max_unroll_without_tiles_uses_bounds(self):
        space = TilingSpace.from_graph(unbalanced_graph())
        node = space.node("light")
        assert max_unroll_for(node) == math.prod(node.loop_bounds)
