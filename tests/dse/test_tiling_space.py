"""Tests for the Linalg tiling space (Section 5.1)."""

import pytest

from repro.dse.tiling_space import TilingSpace
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


def two_matmul_graph():
    builder = GraphBuilder("net")
    x = builder.input((64, 64), INT8)
    w1 = builder.weight((64, 128), INT8)
    w2 = builder.weight((128, 64), INT8)
    y = builder.matmul(x, w1, name="big")
    z = builder.matmul(y, w2, name="small")
    builder.output(z)
    return builder.build()


class TestTilingSpace:
    def test_from_graph_skips_constants(self):
        space = TilingSpace.from_graph(two_matmul_graph())
        assert {node.name for node in space.nodes} == {"big", "small"}

    def test_node_lookup(self):
        space = TilingSpace.from_graph(two_matmul_graph())
        assert space.node("big").op.kind == "matmul"
        with pytest.raises(KeyError):
            space.node("missing")

    def test_naive_tiling_applies_hyperparameter(self):
        space = TilingSpace.from_graph(two_matmul_graph(), default_tile_size=16)
        space.apply_naive_tiling()
        for node in space.nodes:
            assert all(size == 16 for size in node.tile_sizes)

    def test_naive_tiling_clamps_to_bounds(self):
        builder = GraphBuilder()
        x = builder.input((8, 8), INT8)
        w = builder.weight((8, 8), INT8)
        builder.output(builder.matmul(x, w))
        space = TilingSpace.from_graph(builder.build(), default_tile_size=16)
        space.apply_naive_tiling()
        assert all(size <= 8 for size in space.nodes[0].tile_sizes)

    def test_latency_estimate_scales_with_unroll(self):
        space = TilingSpace.from_graph(two_matmul_graph())
        node = space.node("big")
        base = node.latency_estimate()
        node.unroll_factor = 4
        assert node.latency_estimate() == pytest.approx(base / 4)

    def test_vectorization_inferred_from_unroll(self):
        space = TilingSpace.from_graph(two_matmul_graph(), default_tile_size=16)
        space.apply_naive_tiling()
        space.node("big").unroll_factor = 32
        space.infer_vectorization()
        assert space.node("big").vector_width == 32
        assert space.node("small").vector_width == 1

    def test_vectorization_bounded_by_tile(self):
        space = TilingSpace.from_graph(two_matmul_graph(), default_tile_size=2)
        space.apply_naive_tiling()
        space.node("big").unroll_factor = 1024
        space.infer_vectorization(max_vector_elements=64)
        assert space.node("big").vector_width <= 8  # 2x2x2 tile

    def test_to_configs_roundtrip(self):
        space = TilingSpace.from_graph(two_matmul_graph(), default_tile_size=16)
        space.apply_naive_tiling()
        configs = space.to_configs()
        assert set(configs) == {"big", "small"}
        assert configs["big"].tile_sizes == [16, 16, 16]

    def test_total_latency_estimate_positive(self):
        space = TilingSpace.from_graph(two_matmul_graph())
        assert space.total_latency_estimate() > 0
        assert TilingSpace(nodes=[]).total_latency_estimate() == 0.0
