"""Edge cases and determinism for the serving sweeps in ``repro.eval``:
``run_capacity_sweep`` (empty/single-request traces, capacity below one
block), the policy-comparison ``run_policy_sweep``, and the fleet
``run_cluster_sweep``."""

import json

import pytest

from repro.eval.serving import (
    PolicySpec,
    run_capacity_sweep,
    run_cluster_sweep,
    run_disaggregation_sweep,
    run_policy_sweep,
)
from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.serving import burst_trace, poisson_trace, shared_prefix_trace


class TestCapacitySweepEdges:
    def test_empty_trace(self):
        points = run_capacity_sweep(GPT2, [], [None, 64.0])
        assert len(points) == 2
        for point in points:
            assert point.report.num_requests == 0
            assert point.tokens_per_s == 0.0
            assert point.preemptions == 0

    def test_single_request_trace(self):
        trace = burst_trace([Workload(32, 16)])
        points = run_capacity_sweep(GPT2, trace, [None, 64.0])
        for point in points:
            assert point.report.completed == 1
            assert point.preemptions == 0
        # One request alone: managed and unmanaged timing agree exactly.
        assert points[0].report.makespan_s == points[1].report.makespan_s

    def test_capacity_below_one_block_raises(self):
        trace = burst_trace([Workload(32, 16)])
        # GPT-2 KV is ~49 KB/token at A8: 0.001 MB holds no 16-token block.
        with pytest.raises(ValueError, match="block"):
            run_capacity_sweep(GPT2, trace, [0.001])

    def test_empty_capacity_list(self):
        assert run_capacity_sweep(GPT2, [], []) == []

    def test_deterministic_under_fixed_seed(self):
        trace = poisson_trace(12, 100.0, seed=4,
                              input_choices=(64, 128), output_choices=(64,))
        first = run_capacity_sweep(GPT2, trace, [None, 48.0, 24.0],
                                   high_watermark=0.9, low_watermark=0.7)
        second = run_capacity_sweep(GPT2, trace, [None, 48.0, 24.0],
                                    high_watermark=0.9, low_watermark=0.7)
        for a, b in zip(first, second):
            assert json.dumps(a.report.to_dict(), sort_keys=True) \
                == json.dumps(b.report.to_dict(), sort_keys=True)

    def test_point_format_mentions_capacity(self):
        trace = burst_trace([Workload(32, 16)])
        points = run_capacity_sweep(GPT2, trace, [None, 64.0])
        assert "unmanaged" in points[0].format()
        assert "64.0 MB" in points[1].format()


class TestPolicySweep:
    TRACE = shared_prefix_trace(8, prefix_len=96, unique_len=16,
                                output_len=16)

    def test_one_point_per_spec(self):
        specs = [PolicySpec(),
                 PolicySpec(admission="shortest_prompt"),
                 PolicySpec(placement="least_loaded"),
                 PolicySpec(prefix_cache=True)]
        points = run_policy_sweep(GPT2, self.TRACE, specs,
                                  kv_capacity_mb=256.0)
        assert [p.spec for p in points] == specs
        for point in points:
            assert point.report.completed == 8
            assert point.tokens_per_s > 0

    def test_prefix_cache_spec_requires_kv_capacity(self):
        with pytest.raises(ValueError, match="kv_capacity_mb"):
            run_policy_sweep(GPT2, self.TRACE,
                             [PolicySpec(prefix_cache=True)])

    def test_prefix_cache_spec_outperforms_default_on_shared_trace(self):
        points = run_policy_sweep(
            GPT2, self.TRACE,
            [PolicySpec(), PolicySpec(prefix_cache=True)],
            kv_capacity_mb=256.0)
        default, cached = points
        assert cached.tokens_per_s > default.tokens_per_s
        assert cached.mean_ttft_s < default.mean_ttft_s
        assert cached.report.prefix_hit_rate > 0

    def test_default_spec_without_kv_matches_plain_engine(self):
        from repro.serving import ServingEngine

        points = run_policy_sweep(GPT2, self.TRACE, [PolicySpec()])
        plain = ServingEngine(GPT2).run(self.TRACE)
        assert json.dumps(points[0].report.to_dict(), sort_keys=True) \
            == json.dumps(plain.to_dict(), sort_keys=True)

    def test_spec_labels(self):
        assert PolicySpec().label == "fcfs/round_robin/youngest"
        assert PolicySpec(prefix_cache=True).label.endswith("+prefix")
        point = run_policy_sweep(GPT2, self.TRACE, [PolicySpec()])[0]
        assert "tok/s" in point.format()

    def test_sweep_deterministic(self):
        specs = [PolicySpec(admission="priority",
                            preemption="lowest_priority"),
                 PolicySpec(prefix_cache=True)]
        first = run_policy_sweep(GPT2, self.TRACE, specs,
                                 kv_capacity_mb=128.0)
        second = run_policy_sweep(GPT2, self.TRACE, specs,
                                  kv_capacity_mb=128.0)
        for a, b in zip(first, second):
            assert json.dumps(a.report.to_dict(), sort_keys=True) \
                == json.dumps(b.report.to_dict(), sort_keys=True)


class TestClusterSweep:
    TRACE = poisson_trace(16, 40.0, seed=0)

    def test_one_point_per_combination(self):
        points = run_cluster_sweep(GPT2, self.TRACE, [1, 2],
                                   routers=("round_robin", "least_queue"))
        assert [(p.replicas, p.router) for p in points] == [
            (1, "round_robin"), (1, "least_queue"),
            (2, "round_robin"), (2, "least_queue")]
        for point in points:
            assert point.report.completed == 16
            assert point.fleet_tokens_per_s > 0

    def test_more_replicas_raise_fleet_throughput(self):
        one, two = run_cluster_sweep(GPT2, self.TRACE, [1, 2])
        assert two.fleet_tokens_per_s > 1.5 * one.fleet_tokens_per_s

    def test_point_format(self):
        point = run_cluster_sweep(GPT2, self.TRACE, [2])[0]
        line = point.format()
        assert "tok/s" in line and "replica-s" in line
        assert "slo" not in line  # no autoscaler, no attainment column

    def test_autoscaled_sweep_reports_attainment(self):
        from repro.serving.cluster import AutoscalerConfig

        point = run_cluster_sweep(
            GPT2, self.TRACE, [1],
            autoscaler=AutoscalerConfig(max_replicas=2, warmup_s=0.2,
                                        slo_ttft_s=5.0))[0]
        assert point.report.slo_attainment is not None
        assert "slo" in point.format()

    def test_sweep_deterministic(self):
        first = run_cluster_sweep(GPT2, self.TRACE, [2],
                                  routers=("least_queue",))
        second = run_cluster_sweep(GPT2, self.TRACE, [2],
                                   routers=("least_queue",))
        assert json.dumps(first[0].report.to_dict(), sort_keys=True) \
            == json.dumps(second[0].report.to_dict(), sort_keys=True)

    def test_empty_trace(self):
        points = run_cluster_sweep(GPT2, [], [1, 2])
        for point in points:
            assert point.report.completed == 0
            assert point.fleet_tokens_per_s == 0.0


class TestDisaggregationSweep:
    def trace(self, num=16):
        return poisson_trace(num, 30.0, seed=0, input_choices=(32, 64),
                             output_choices=(96, 128))

    def test_unified_and_split_points(self):
        points = run_disaggregation_sweep(GPT2, self.trace(),
                                          splits=[(0, 2), (1, 1)])
        unified, split = points
        assert unified.unified and not split.unified
        assert unified.total_replicas == split.total_replicas == 2
        assert not unified.report.disaggregated
        assert split.report.disaggregated
        assert unified.report.completed == split.report.completed == 16
        assert split.report.kv_migrations == 16
        assert "unified" in unified.format()
        assert "1p + 1d" in split.format()

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            run_disaggregation_sweep(GPT2, self.trace(4), splits=[(1, 0)])
        with pytest.raises(ValueError, match="split"):
            run_disaggregation_sweep(GPT2, self.trace(4), splits=[(-1, 2)])
        with pytest.raises(ValueError, match="hybrid"):
            run_disaggregation_sweep(GPT2, self.trace(4),
                                     splits=[(1, 1, 64)])
        with pytest.raises(ValueError, match="split"):
            run_disaggregation_sweep(GPT2, self.trace(4),
                                     splits=[(0, 2, 64, 9)])

    def test_hybrid_split_caps_prefill_on_a_colocated_fleet(self):
        unified, hybrid = run_disaggregation_sweep(
            GPT2, self.trace(), splits=[(0, 2), (0, 2, 48)])
        assert unified.mode == "unified"
        assert hybrid.mode == "hybrid"
        assert hybrid.prefill_token_cap == 48
        assert not hybrid.report.disaggregated
        assert hybrid.report.completed == 16
        assert "hybrid x2" in hybrid.format()

    def test_mode_property_spans_all_three_regimes(self):
        points = run_disaggregation_sweep(
            GPT2, self.trace(), splits=[(0, 2), (0, 2, 48), (1, 1)])
        assert [p.mode for p in points] \
            == ["unified", "hybrid", "disaggregated"]

    def test_streamed_sweep_reaches_the_cluster(self):
        mono, = run_disaggregation_sweep(GPT2, self.trace(),
                                         splits=[(1, 1)],
                                         kv_transfer_gbs=0.1)
        streamed, = run_disaggregation_sweep(GPT2, self.trace(),
                                             splits=[(1, 1)],
                                             kv_transfer_gbs=0.1,
                                             kv_stream_chunks=6)
        payload = streamed.report.to_dict()["disaggregation"]
        assert payload["kv_streaming"]["chunks_per_migration"] == 6
        assert "kv_streaming" not in mono.report.to_dict()["disaggregation"]
        assert streamed.report.kv_bytes_transferred \
            == mono.report.kv_bytes_transferred

    def test_transfer_bandwidth_reaches_the_cluster(self):
        fast, = run_disaggregation_sweep(GPT2, self.trace(),
                                         splits=[(1, 1)],
                                         kv_transfer_gbs=1000.0)
        slow, = run_disaggregation_sweep(GPT2, self.trace(),
                                         splits=[(1, 1)],
                                         kv_transfer_gbs=0.1)
        assert slow.report.kv_transfer_seconds \
            > 100 * fast.report.kv_transfer_seconds

    def test_sweep_deterministic(self):
        trace = self.trace()
        def run():
            return [json.dumps(p.report.to_dict(), sort_keys=True)
                    for p in run_disaggregation_sweep(
                        GPT2, trace, splits=[(0, 2), (1, 1)])]
        assert run() == run()

    def test_empty_trace(self):
        points = run_disaggregation_sweep(GPT2, [], splits=[(0, 2), (1, 1)])
        for point in points:
            assert point.report.num_requests == 0
            assert point.report.kv_migrations == 0
