"""Tests for the FPGA and GPU latency models."""

import pytest

from repro.eval.baselines import a100_model, rtx2080ti_model
from repro.eval.latency import FpgaPerformanceModel, GpuPerformanceModel
from repro.models.config import GPT2, LLAMA, QWEN
from repro.models.workload import Workload
from repro.resource.token_model import EqualizationStrategy


class TestFpgaModel:
    def test_latency_components(self):
        model = FpgaPerformanceModel()
        result = model.evaluate(GPT2, Workload(32, 32))
        assert result.ttft_s > 0
        assert result.decode_time_s > 0
        assert result.latency_s == pytest.approx(result.ttft_s + result.decode_time_s)
        assert result.energy_j > 0

    def test_ttft_scales_roughly_linearly_with_input(self):
        """Table 4 observes TTFT scaling linearly with input length."""
        model = FpgaPerformanceModel()
        short = model.evaluate(GPT2, Workload(32, 32)).ttft_s
        long = model.evaluate(GPT2, Workload(256, 32)).ttft_s
        assert long / short == pytest.approx(8.0, rel=0.25)

    def test_decode_speed_roughly_constant(self):
        model = FpgaPerformanceModel()
        speeds = [model.evaluate(GPT2, Workload(32, out)).decode_speed_tokens_per_s
                  for out in (32, 128, 256)]
        assert max(speeds) / min(speeds) < 1.3

    def test_decode_is_memory_bound(self):
        """Decode time tracks the weight-streaming bandwidth, not compute."""
        base = FpgaPerformanceModel()
        more_compute = FpgaPerformanceModel(compute_efficiency=0.5)
        workload = Workload(32, 64)
        assert more_compute.evaluate(GPT2, workload).decode_time_s \
            == pytest.approx(base.evaluate(GPT2, workload).decode_time_s, rel=0.05)

    def test_conservative_strategy_slows_down(self):
        model = FpgaPerformanceModel()
        threshold = model.conservative_threshold_fraction \
            * model.platform.onchip_memory_bytes
        normal = model.evaluate(LLAMA, Workload(32, 32),
                                intermediate_bytes=threshold * 0.5)
        conservative = model.evaluate(LLAMA, Workload(32, 32),
                                      intermediate_bytes=threshold * 2.0)
        assert conservative.latency_s > normal.latency_s

    def test_equalization_selection(self):
        model = FpgaPerformanceModel()
        budget = model.platform.onchip_memory_bytes
        assert model.equalization_for(budget * 0.01) is EqualizationStrategy.NORMAL
        assert model.equalization_for(budget * 0.5) \
            is EqualizationStrategy.CONSERVATIVE

    def test_larger_model_is_slower(self):
        model = FpgaPerformanceModel()
        assert model.evaluate(LLAMA, Workload(32, 32)).latency_s \
            > model.evaluate(QWEN, Workload(32, 32)).latency_s

    def test_tokens_per_joule_positive(self):
        result = FpgaPerformanceModel().evaluate(GPT2, Workload(32, 32))
        assert result.tokens_per_joule > 0


class TestGpuModel:
    def test_prefill_much_faster_than_fpga(self):
        gpu = a100_model().evaluate(GPT2, Workload(128, 32))
        fpga = FpgaPerformanceModel().evaluate(GPT2, Workload(128, 32))
        assert gpu.ttft_s < fpga.ttft_s / 3

    def test_decode_dominated_by_overhead(self):
        """Decoding small LLMs on a GPU is launch-overhead bound, so doubling
        the modelled bandwidth barely changes the decode time."""
        base = a100_model()
        faster = GpuPerformanceModel(platform=base.platform,
                                     per_layer_overhead_s=base.per_layer_overhead_s)
        faster.platform = base.platform
        workload = Workload(32, 64)
        result = base.evaluate(GPT2, workload)
        overhead = (GPT2.num_layers * base.per_layer_overhead_s
                    + base.per_pass_overhead_s) * workload.num_decode_steps
        assert overhead > 0.5 * result.decode_time_s

    def test_a100_beats_2080ti(self):
        workload = Workload(64, 64)
        a100 = a100_model().evaluate(GPT2, workload)
        rtx = rtx2080ti_model().evaluate(GPT2, workload)
        assert a100.latency_s < rtx.latency_s

    def test_energy_uses_power_between_idle_and_tdp(self):
        result = a100_model().evaluate(GPT2, Workload(32, 32))
        power = result.energy_j / result.latency_s
        assert 0.5 * 300 <= power <= 300
