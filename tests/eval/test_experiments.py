"""Tests for the experiment drivers: the paper's key claims must reproduce.

These are the headline checks of EXPERIMENTS.md: we do not require the
absolute numbers of the paper, but the comparisons (who wins, by roughly what
factor, where the crossovers are) must hold.
"""

import pytest

from repro.eval.energy import best_ratio, geometric_mean_ratio
from repro.eval.experiments import (
    ExperimentContext,
    format_figure9,
    format_figure10a,
    format_figure10b,
    format_figure10c,
    format_table4,
    format_table5,
    run_figure9,
    run_figure10a,
    run_figure10b,
    run_figure10c,
    run_table4,
    run_table5,
    run_table7,
)
from repro.models.config import GEMMA, LLAMA, QWEN
from repro.models.workload import Workload


@pytest.fixture(scope="module")
def context():
    return ExperimentContext()


@pytest.fixture(scope="module")
def table4_rows(context):
    return run_table4(context)


@pytest.fixture(scope="module")
def table5_rows(context):
    return run_table5(context)


@pytest.fixture(scope="module")
def figure9(context):
    # A 2x2 corner of the full sweep keeps the test fast; the benchmark runs
    # the full 3x3 grid.
    workloads = [Workload(32, 32), Workload(32, 128),
                 Workload(128, 32), Workload(128, 128)]
    return run_figure9(context, workloads=workloads)


class TestTable4Claims:
    def test_lower_latency_than_allo(self, table4_rows):
        """Paper: geometric-mean latency ratio vs Allo is 0.76x."""
        for row in table4_rows:
            assert row.latency_ratio_vs_allo < 1.0
        ratios = [row.latency_ratio_vs_allo for row in table4_rows]
        geomean = 1.0
        for ratio in ratios:
            geomean *= ratio
        geomean **= 1.0 / len(ratios)
        assert 0.6 < geomean < 0.95

    def test_much_lower_ttft_than_baselines(self, table4_rows):
        """Paper: TTFT ratios ~0.40x vs Allo and ~0.19x vs DFX."""
        for row in table4_rows:
            assert row.ttft_ratio_vs_allo < 0.6
            assert row.ttft_ratio_vs_dfx < 0.35

    def test_lower_latency_than_dfx(self, table4_rows):
        for row in table4_rows:
            assert row.latency_ratio_vs_dfx < 0.7

    def test_comparable_or_better_decode_speed(self, table4_rows):
        for row in table4_rows:
            assert row.speed_ratio_vs_allo > 0.9
            assert row.speed_ratio_vs_dfx > 1.0

    def test_ttft_scales_linearly_with_input_length(self, table4_rows):
        first, last = table4_rows[0], table4_rows[-1]
        scale = last.ours_ttft_ms / first.ours_ttft_ms
        assert scale == pytest.approx(256 / 32, rel=0.3)

    def test_formatting(self, table4_rows):
        text = format_table4(table4_rows)
        assert "[32:32]" in text and "vs Allo" in text


class TestTable5Claims:
    def test_lower_total_latency_than_gpus(self, table5_rows):
        """Paper: 0.64x vs A100 and 0.25x vs 2080Ti (geomean)."""
        for row in table5_rows:
            assert row.latency_ratio_vs_a100 < 1.0
            assert row.latency_ratio_vs_2080ti < 0.6

    def test_gpus_win_ttft_by_a_large_margin(self, table5_rows):
        """Paper: A100 TTFT is 4x-32x better, growing with input length."""
        ratios = [row.ttft_ratio_vs_a100 for row in table5_rows]
        assert all(r > 2.0 for r in ratios)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 10.0

    def test_fpga_wins_decode_speed(self, table5_rows):
        """Paper: 1.89x (A100) and 4.73x (2080Ti) geomean decode speed."""
        for row in table5_rows:
            assert row.speed_ratio_vs_a100 > 1.3
            assert row.speed_ratio_vs_2080ti > 2.5

    def test_formatting(self, table5_rows):
        assert "vs A100" in format_table5(table5_rows)


class TestFigure9Claims:
    def test_qwen_and_gemma_beat_a100_on_energy(self, figure9):
        assert best_ratio(figure9["qwen"]) > 1.5
        assert best_ratio(figure9["gemma"]) > 1.1

    def test_qwen_peak_ratio_near_2x(self, figure9):
        """Paper: up to 1.99x on Qwen."""
        assert 1.5 < best_ratio(figure9["qwen"]) < 3.0

    def test_llama_is_the_weakest_model(self, figure9):
        """Paper: Llama's larger intermediates force conservative FIFO sizing."""
        llama = geometric_mean_ratio(figure9["llama"])
        assert llama < geometric_mean_ratio(figure9["qwen"])
        assert llama < geometric_mean_ratio(figure9["gemma"])
        assert llama < 1.1

    def test_formatting(self, figure9):
        assert "tokens/J" in format_figure9(figure9)


class TestFigure10Claims:
    def test_figure10a_memory_reduction(self, context):
        """Paper: fusion reduces intermediate memory to 14.8%-16.8%."""
        rows = run_figure10a(context)
        assert {row.model for row in rows} == {"gpt2", "qwen", "llama", "gemma"}
        for row in rows:
            assert 0.08 < row.ratio < 0.25
        llama_row = next(row for row in rows if row.model == "llama")
        assert llama_row.original_mb == max(row.original_mb for row in rows)
        assert "Figure 10a" in format_figure10a(rows)

    def test_figure10b_hls_dominates(self, context):
        """Paper: HLS + profiling dominate RTL generation time."""
        rows = run_figure10b(context)
        for row in rows:
            vendor = row.hls_seconds + row.profiling_seconds
            assert vendor > 0.9 * row.total_seconds
            assert row.streamtensor_seconds < 0.1 * row.total_seconds
        assert "Figure 10b" in format_figure10b(rows)

    def test_figure10c_stage_breakdown(self, context):
        breakdowns = run_figure10c(context)
        assert set(breakdowns) == {"gpt2", "qwen", "llama", "gemma"}
        for stages in breakdowns.values():
            assert sum(stages.values()) > 0
            assert "Resource_Alloc" in stages
        assert "Figure 10c" in format_figure10c(breakdowns)

    def test_table7_reproduces_config_table(self):
        rows = run_table7()
        assert rows["gpt2"]["hidden_size"] == 1024
        assert rows["gemma"]["kv_heads"] == 1
        assert rows["llama"]["layers"] == 22
        assert rows["qwen"]["activation"] == "SILU"


class TestExperimentContext:
    def test_compiled_results_are_cached(self, context):
        first = context.compiled(QWEN)
        second = context.compiled(QWEN)
        assert first is second

    def test_llama_triggers_conservative_strategy(self, context):
        from repro.resource.token_model import EqualizationStrategy
        model = context.fpga_model
        assert model.equalization_for(context.intermediate_bytes(LLAMA)) \
            is EqualizationStrategy.CONSERVATIVE
        assert model.equalization_for(context.intermediate_bytes(QWEN)) \
            is EqualizationStrategy.NORMAL
        assert model.equalization_for(context.intermediate_bytes(GEMMA)) \
            is EqualizationStrategy.NORMAL
