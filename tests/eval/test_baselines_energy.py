"""Tests for published baselines and the energy comparison helpers."""

import pytest

from repro.eval.baselines import (
    ALLO_GPT2_RESULTS,
    DFX_GPT2_RESULTS,
    published_baseline,
    unfused_dataflow_model,
)
from repro.eval.energy import best_ratio, compare_energy, geometric_mean_ratio
from repro.eval.latency import FpgaPerformanceModel
from repro.eval.baselines import a100_model
from repro.models.config import GPT2, QWEN
from repro.models.workload import Workload


class TestPublishedBaselines:
    def test_allo_table4_row(self):
        result = published_baseline("allo", Workload(32, 32))
        assert result.latency_ms == 238.32
        assert result.ttft_ms == 81.50
        assert result.speed_tokens_per_s == 204.05

    def test_dfx_table4_row(self):
        result = published_baseline("dfx", Workload(256, 256))
        assert result.latency_ms == 2800.00
        assert result.ttft_ms == 1417.60

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            published_baseline("vllm", Workload(32, 32))

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            published_baseline("allo", Workload(512, 512))

    def test_all_four_workloads_present(self):
        assert len(ALLO_GPT2_RESULTS) == 4
        assert len(DFX_GPT2_RESULTS) == 4


class TestUnfusedBaseline:
    def test_unfused_design_is_slower(self):
        fused = FpgaPerformanceModel()
        unfused = unfused_dataflow_model(fused)
        workload = Workload(64, 64)
        assert unfused.evaluate(GPT2, workload).latency_s \
            > fused.evaluate(GPT2, workload).latency_s

    def test_unfused_keeps_platform(self):
        unfused = unfused_dataflow_model()
        assert unfused.platform.name == "AMD U55C"


class TestEnergyComparison:
    def test_compare_energy_ratio(self):
        ours = FpgaPerformanceModel().evaluate(QWEN, Workload(32, 32))
        theirs = a100_model().evaluate(QWEN, Workload(32, 32))
        comparison = compare_energy(ours, theirs)
        assert comparison.ratio == pytest.approx(
            ours.tokens_per_joule / theirs.tokens_per_joule)
        assert comparison.baseline_name == "NVIDIA A100"

    def test_workload_mismatch_rejected(self):
        ours = FpgaPerformanceModel().evaluate(QWEN, Workload(32, 32))
        theirs = a100_model().evaluate(QWEN, Workload(64, 32))
        with pytest.raises(ValueError):
            compare_energy(ours, theirs)

    def test_geometric_mean_and_best(self):
        fpga = FpgaPerformanceModel()
        gpu = a100_model()
        comparisons = [
            compare_energy(fpga.evaluate(QWEN, w), gpu.evaluate(QWEN, w))
            for w in (Workload(32, 32), Workload(64, 64))
        ]
        geo = geometric_mean_ratio(comparisons)
        best = best_ratio(comparisons)
        assert best >= geo > 0
        assert geometric_mean_ratio([]) == 1.0
        assert best_ratio([]) == 1.0
