"""Tests for the batched step cost model and the sequential baseline."""

import pytest

from repro.eval.latency import FpgaPerformanceModel
from repro.eval.serving import run_sequential_baseline
from repro.models.config import GPT2, LLAMA
from repro.models.workload import Workload
from repro.resource.token_model import EqualizationStrategy
from repro.serving.workload_gen import burst_trace, trace_from_specs


class TestEngineStepTime:
    def test_empty_batch_is_free(self):
        model = FpgaPerformanceModel()
        assert model.engine_step_time_s(GPT2, [],
                                        EqualizationStrategy.NORMAL) == 0.0

    def test_singleton_reduces_to_decode_step(self):
        model = FpgaPerformanceModel()
        single = model.engine_step_time_s(GPT2, [(1, 64)],
                                          EqualizationStrategy.NORMAL)
        assert single == pytest.approx(
            model.decode_step_time_s(GPT2, 64, EqualizationStrategy.NORMAL))

    def test_singleton_reduces_to_prefill(self):
        model = FpgaPerformanceModel()
        single = model.engine_step_time_s(GPT2, [(128, 128)],
                                          EqualizationStrategy.NORMAL)
        assert single == pytest.approx(
            model.prefill_time_s(GPT2, 128, EqualizationStrategy.NORMAL))

    def test_batch_is_sublinear_in_size(self):
        model = FpgaPerformanceModel()
        single = model.engine_step_time_s(GPT2, [(1, 64)],
                                          EqualizationStrategy.NORMAL)
        batch8 = model.engine_step_time_s(GPT2, [(1, 64)] * 8,
                                          EqualizationStrategy.NORMAL)
        assert batch8 < 8 * single
        assert batch8 >= single

    def test_batch_time_monotonic_in_members(self):
        model = FpgaPerformanceModel()
        small = model.engine_step_time_s(GPT2, [(1, 64)] * 2,
                                         EqualizationStrategy.NORMAL)
        large = model.engine_step_time_s(GPT2, [(1, 64)] * 4,
                                         EqualizationStrategy.NORMAL)
        assert large >= small

    def test_conservative_strategy_dilates_step(self):
        model = FpgaPerformanceModel()
        batch = [(1, 64)] * 4
        normal = model.engine_step_time_s(LLAMA, batch,
                                          EqualizationStrategy.NORMAL)
        conservative = model.engine_step_time_s(
            LLAMA, batch, EqualizationStrategy.CONSERVATIVE)
        assert conservative > normal


    def test_mid_prefill_chunks_skip_the_lm_head(self):
        """A step of non-emitting chunks is cheaper than an emitting one;
        chunked prefill must not pay the vocabulary projection per chunk."""
        model = FpgaPerformanceModel()
        batch = [(64, 64)]
        silent = model.engine_step_time_s(GPT2, batch,
                                          EqualizationStrategy.NORMAL,
                                          emitting=0)
        emitting = model.engine_step_time_s(GPT2, batch,
                                            EqualizationStrategy.NORMAL)
        assert silent < emitting
        assert emitting - silent == pytest.approx(
            model.lm_head_time_s(GPT2))


class TestSequentialBaseline:
    def test_burst_trace_matches_throughput_sweep_totals(self):
        trace = burst_trace([Workload(16, 8), Workload(32, 16)])
        baseline = run_sequential_baseline(GPT2, trace)
        assert baseline.num_requests == 2
        assert baseline.total_output_tokens == 24
        # All requests arrive at once: makespan is pure busy time.
        assert baseline.makespan_s == pytest.approx(baseline.busy_s)
        assert baseline.tokens_per_s == pytest.approx(24 / baseline.busy_s)
        assert baseline.busy_tokens_per_s == baseline.tokens_per_s

    def test_arrival_gaps_counted_in_makespan(self):
        trace = trace_from_specs([(0.0, "[16:8]"), (100.0, "[16:8]")])
        baseline = run_sequential_baseline(GPT2, trace)
        assert baseline.makespan_s > 100.0
        assert baseline.busy_s < 10.0
        assert baseline.tokens_per_s < baseline.busy_tokens_per_s

    def test_oversized_requests_skipped(self):
        trace = trace_from_specs([(0.0, "[16:8]"), (0.1, "[2000:64]")])
        baseline = run_sequential_baseline(GPT2, trace, max_seq_len=128)
        assert baseline.num_requests == 1
        assert baseline.total_output_tokens == 8

    def test_empty_trace(self):
        baseline = run_sequential_baseline(GPT2, [])
        assert baseline.tokens_per_s == 0.0

    def test_cold_start_charges_packing_symmetrically(self):
        """With cold_start the baseline pays the packing delay too, so the
        engine/baseline comparison stays apples-to-apples."""
        trace = burst_trace([Workload(16, 8)])
        warm = run_sequential_baseline(GPT2, trace)
        cold = run_sequential_baseline(GPT2, trace, cold_start=True)
        assert cold.makespan_s > warm.makespan_s + 1.0
        assert cold.busy_s == pytest.approx(warm.busy_s)
