"""Unit tests for the discrete-event core (:mod:`repro.serving.cluster.
events`): deterministic ordering, kind-priority tie-breaking, lazy step
invalidation and the recording log.  The kernel built on top is covered
by the differential suite (``test_kernel_differential.py``) and the
invariant sweep (``test_kernel_invariants.py``)."""

import pytest

from repro.serving.cluster import Event, EventKind, EventQueue


class FakeReplica:
    """The two attributes ``arm_step`` reads."""

    def __init__(self, replica_id, next_ready_s):
        self.replica_id = replica_id
        self.next_ready_s = next_ready_s


def pop_all(queue):
    events = []
    while True:
        event = queue.pop()
        if event is None:
            break
        events.append(event)
    return events


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.ARRIVAL)
        queue.push(1.0, EventKind.ARRIVAL)
        queue.push(2.0, EventKind.ARRIVAL)
        assert [event[0] for event in pop_all(queue)] == [1.0, 2.0, 3.0]

    def test_kind_breaks_equal_time_ties(self):
        """At one instant the legacy loop's cascade order holds: arrival,
        then migration landing, then control tick, then step — encoded as
        the EventKind integer values."""
        queue = EventQueue()
        replica = FakeReplica(0, 5.0)
        queue.arm_step(replica)
        queue.push(5.0, EventKind.CONTROL_TICK)
        queue.push(5.0, EventKind.TRANSFER_LANDED, tie=1)
        queue.push(5.0, EventKind.ARRIVAL)
        kinds = [event[1] for event in pop_all(queue)]
        assert kinds == [int(EventKind.ARRIVAL),
                         int(EventKind.TRANSFER_LANDED),
                         int(EventKind.CONTROL_TICK),
                         int(EventKind.STEP)]

    def test_step_ties_break_on_lowest_replica_id(self):
        """Equal-time steps fire lowest replica id first — exactly the
        old ``min(live, key=(next_ready_s, replica_id))``."""
        queue = EventQueue()
        for replica_id in (2, 0, 1):
            queue.arm_step(FakeReplica(replica_id, 1.5))
        assert [event[4].replica_id for event in pop_all(queue)] == [0, 1, 2]

    def test_transfer_ties_break_on_migration_seq(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.TRANSFER_LANDED, tie=7, payload="late")
        queue.push(2.0, EventKind.TRANSFER_LANDED, tie=3, payload="early")
        assert [event[4] for event in pop_all(queue)] == ["early", "late"]

    def test_identical_keys_pop_in_push_order(self):
        """The global seq makes every heap key unique, so equal
        (time, kind, tie) events keep FIFO push order and heap order
        never falls through to comparing payloads."""
        queue = EventQueue()
        queue.push(1.0, EventKind.ARRIVAL, payload=object())
        queue.push(1.0, EventKind.ARRIVAL, payload=object())
        first, second = pop_all(queue)
        assert first[3] < second[3]

    def test_out_of_order_push_is_caught(self):
        """Delivering an event earlier than one already delivered is the
        kernel's core invariant violation — asserted, not silently
        reordered."""
        queue = EventQueue()
        queue.push(5.0, EventKind.ARRIVAL)
        queue.pop()
        queue.push(1.0, EventKind.ARRIVAL)
        with pytest.raises(AssertionError, match="out of order"):
            queue.pop()


class TestLazyInvalidation:
    def test_rearm_supersedes_previous_step(self):
        """Re-arming a replica leaves the old heap entry in place but
        stale; pop skips it and delivers only the current one."""
        queue = EventQueue()
        replica = FakeReplica(0, 4.0)
        queue.arm_step(replica)
        replica.next_ready_s = 2.0
        queue.arm_step(replica)
        events = pop_all(queue)
        assert [(event[0], event[4]) for event in events] == [(2.0, replica)]
        assert queue.popped == 1
        assert queue.stale_dropped == 1

    def test_disarm_invalidates_without_rearming(self):
        queue = EventQueue()
        replica = FakeReplica(3, 1.0)
        queue.arm_step(replica)
        queue.disarm_step(replica.replica_id)
        assert queue.pop() is None
        assert queue.stale_dropped == 1

    def test_disarm_unknown_replica_is_noop(self):
        queue = EventQueue()
        queue.disarm_step(99)
        assert queue.pop() is None

    def test_len_counts_stale_entries_until_popped(self):
        queue = EventQueue()
        replica = FakeReplica(0, 4.0)
        queue.arm_step(replica)
        queue.arm_step(replica)
        assert len(queue) == 2
        pop_all(queue)
        assert len(queue) == 0

    def test_step_payload_unwraps_to_replica(self):
        """The version tag is queue bookkeeping; the popped payload is
        the replica itself."""
        queue = EventQueue()
        replica = FakeReplica(1, 0.5)
        queue.arm_step(replica)
        event = queue.pop()
        assert event[4] is replica


class TestOnPop:
    """The ``on_pop`` sink replaced the old ``record=True`` log: the
    queue itself retains nothing, and typed ``Event`` records are
    materialized lazily from the tracer's kernel log — the one
    event-materialization path."""

    def test_no_sink_by_default(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.ARRIVAL)
        assert queue.on_pop is None
        assert queue.pop() is not None

    def test_sink_receives_raw_entries_with_step_unwrapped(self):
        seen = []
        queue = EventQueue(on_pop=seen.append)
        queue.push(1.0, EventKind.ARRIVAL)
        replica = FakeReplica(2, 1.0)
        queue.arm_step(replica)
        pop_all(queue)
        assert [entry[1] for entry in seen] == [int(EventKind.ARRIVAL),
                                                int(EventKind.STEP)]
        # The step entry's payload is the replica itself, not the
        # (replica, version) bookkeeping tuple.
        assert seen[1][4] is replica

    def test_sink_skips_stale_entries(self):
        seen = []
        queue = EventQueue(on_pop=seen.append)
        replica = FakeReplica(0, 3.0)
        queue.arm_step(replica)
        queue.arm_step(replica)
        pop_all(queue)
        assert len(seen) == 1

    def test_tracer_kernel_log_materializes_typed_events(self):
        from repro.serving.telemetry import Tracer

        tracer = Tracer()
        tracer.enable_kernel_log()
        queue = EventQueue(on_pop=tracer.kernel_event)
        queue.push(1.0, EventKind.ARRIVAL)
        queue.arm_step(FakeReplica(2, 1.0))
        pop_all(queue)
        log = tracer.kernel_events()
        assert [type(event) for event in log] == [Event, Event]
        arrival, step = log
        assert arrival.kind is EventKind.ARRIVAL
        assert step.kind is EventKind.STEP
        assert step.tie == 2
        assert arrival.key <= step.key

    def test_kernel_log_none_unless_enabled(self):
        from repro.serving.telemetry import Tracer

        assert Tracer().kernel_events() is None
