"""Differential-testing harness: the event kernel must reproduce the
step loop byte-for-byte.

The discrete-event kernel (``ServingCluster(kernel="event")``) rewrote
the hot core under five PRs' worth of accumulated serving behavior, so
its correctness argument is not "the code looks equivalent" but "on the
same seeded trace, both kernels emit the *identical* ``ClusterReport``
— every latency percentile, every preemption count, every timeline
sample — compared as serialized JSON".  The parametrized matrix below
spans the representative regimes: unified/autoscaled/disaggregated
fleets, every routing policy, prefix caching, KV pressure with
preemption, and migration under decode-pool scaling.

Also here: the regression pinning event-count == step-loop
iteration-count (the two kernels must process the same number of
simulation events, or they diverged silently), and the report-shape
assertion guarding the numpy metrics refactor (report JSON shape
unchanged).
"""

import json

import pytest

from repro.models.config import GPT2
from repro.serving import KVCacheConfig, SchedulerConfig
from repro.serving.cluster import (
    AutoscalerConfig,
    DisaggregationConfig,
    FaultPlan,
    KVLinkDegradation,
    ReplicaCrash,
    ServingCluster,
    SlowNode,
)
from repro.serving.workload_gen import (
    flash_crowd_trace,
    multi_turn_trace,
    poisson_trace,
    shared_prefix_trace,
    tool_use_trace,
)

PER_TOKEN = GPT2.kv_cache_bytes_per_token()


def kv_blocks(blocks, block_size=16, **kwargs):
    """A pool of exactly ``blocks`` blocks (test-legible sizing)."""
    return KVCacheConfig(capacity_bytes=blocks * block_size * PER_TOKEN,
                         block_size=block_size, **kwargs)


# name -> (cluster kwargs, trace).  Every entry runs under both kernels
# and the reports must match byte-for-byte.
CONFIGS = {
    "single_replica": (
        dict(initial_replicas=1),
        poisson_trace(60, 25.0, seed=0)),
    "fixed_round_robin": (
        dict(initial_replicas=3, router="round_robin"),
        poisson_trace(90, 40.0, seed=1)),
    "fixed_least_queue": (
        dict(initial_replicas=3, router="least_queue"),
        poisson_trace(120, 40.0, seed=7)),
    "least_kv_pressure": (
        dict(initial_replicas=2, router="least_kv_pressure",
             kv_config=kv_blocks(128)),
        poisson_trace(80, 30.0, seed=2)),
    "prefix_affinity_cached": (
        dict(initial_replicas=2, router="prefix_affinity",
             kv_config=kv_blocks(256, enable_prefix_cache=True)),
        shared_prefix_trace(64, prefix_len=48, unique_len=8,
                            output_len=16, interval_s=0.02,
                            num_groups=4)),
    "kv_pressure_preempting": (
        dict(initial_replicas=2, router="least_kv_pressure",
             kv_config=kv_blocks(48),
             scheduler_config=SchedulerConfig(max_batch_size=8)),
        poisson_trace(80, 35.0, seed=13, input_choices=(64, 128),
                      output_choices=(32, 64))),
    "autoscaled_queue_only": (
        dict(initial_replicas=1, router="round_robin",
             autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                         warmup_s=0.2)),
        poisson_trace(100, 60.0, seed=4)),
    "autoscaled_slo_flash_crowd": (
        dict(initial_replicas=2, router="round_robin",
             autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=5,
                                         slo_ttft_s=0.5, warmup_s=0.2)),
        flash_crowd_trace(150, 20.0, 120.0, 1.0, 0.6, seed=11)),
    "disagg_basic": (
        dict(router="least_queue",
             disaggregation=DisaggregationConfig(prefill_replicas=1,
                                                 decode_replicas=2),
             kv_config=kv_blocks(256)),
        poisson_trace(100, 30.0, seed=3)),
    "disagg_kv_transfer_aware": (
        dict(router="round_robin",
             disaggregation=DisaggregationConfig(prefill_replicas=2,
                                                 decode_replicas=2,
                                                 kv_transfer_gbs=8.0),
             kv_config=kv_blocks(192)),
        poisson_trace(90, 35.0, seed=9, input_choices=(32, 64),
                      output_choices=(16,))),
    "disagg_decode_least_queue": (
        dict(router="least_queue",
             disaggregation=DisaggregationConfig(prefill_replicas=2,
                                                 decode_replicas=1,
                                                 decode_router="least_queue")),
        poisson_trace(70, 25.0, seed=6)),
    "disagg_autoscaled": (
        dict(router="least_queue",
             disaggregation=DisaggregationConfig(prefill_replicas=2,
                                                 decode_replicas=2),
             kv_config=kv_blocks(256),
             autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                         slo_tpot_s=0.05,
                                         kv_pressure_high=0.8,
                                         warmup_s=0.1)),
        flash_crowd_trace(150, 25.0, 100.0, 1.0, 0.5, seed=5)),
    "disagg_streamed_kv": (
        dict(router="round_robin",
             disaggregation=DisaggregationConfig(prefill_replicas=2,
                                                 decode_replicas=2,
                                                 kv_transfer_gbs=0.05,
                                                 kv_stream_chunks=4),
             kv_config=kv_blocks(192)),
        poisson_trace(80, 30.0, seed=23, input_choices=(64, 128),
                      output_choices=(16, 32))),
    "disagg_streamed_stalling": (
        # Link slow enough that decode regularly outruns the stream: the
        # stall-clamp path (charged decode wait) must also be
        # kernel-equivalent, not just the happy streamed path.
        dict(router="least_queue",
             disaggregation=DisaggregationConfig(prefill_replicas=1,
                                                 decode_replicas=2,
                                                 kv_transfer_gbs=0.01,
                                                 kv_stream_chunks=6)),
        poisson_trace(60, 25.0, seed=29, input_choices=(32, 96),
                      output_choices=(24,))),
    "hybrid_prefill_capped": (
        dict(initial_replicas=2, router="least_queue",
             scheduler_config=SchedulerConfig(prefill_token_cap=96)),
        poisson_trace(90, 35.0, seed=31, input_choices=(64, 128),
                      output_choices=(16, 32))),
    "score_class_mix": (
        dict(initial_replicas=2, router="score",
             scheduler_config=SchedulerConfig(admission="score"),
             preemption="lowest_score"),
        poisson_trace(100, 45.0, seed=17,
                      slo_class_mix="interactive=1,standard=2,"
                                    "batch=2,best_effort=1")),
    "score_preempting_class_autoscaled": (
        dict(initial_replicas=1, router="score",
             scheduler_config=SchedulerConfig(admission="score",
                                              max_batch_size=8),
             preemption="lowest_score",
             kv_config=kv_blocks(48),
             autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4,
                                         class_miss_high=0.3,
                                         warmup_s=0.2)),
        poisson_trace(90, 40.0, seed=19, input_choices=(64, 128),
                      output_choices=(32, 64),
                      slo_class_mix="interactive=2,standard=1,"
                                    "best_effort=1")),
    "faulted_fixed_crash_slow": (
        dict(initial_replicas=3, router="least_queue",
             fault_plan=FaultPlan(events=(
                 ReplicaCrash(time_s=0.8, replica_id=1),
                 SlowNode(time_s=0.3, replica_id=0, scale=2.5,
                          duration_s=1.0)))),
        poisson_trace(90, 40.0, seed=41)),
    "faulted_autoscaled_replacement": (
        dict(initial_replicas=2, router="round_robin",
             autoscaler=AutoscalerConfig(min_replicas=2, max_replicas=4,
                                         warmup_s=0.2),
             fault_plan=FaultPlan(events=(
                 ReplicaCrash(time_s=0.6, replica_id=0),))),
        poisson_trace(100, 50.0, seed=43)),
    "faulted_disagg_kvlink": (
        dict(router="least_queue",
             disaggregation=DisaggregationConfig(prefill_replicas=2,
                                                 decode_replicas=2,
                                                 kv_transfer_gbs=0.05,
                                                 kv_stream_chunks=2),
             kv_config=kv_blocks(192),
             fault_plan=FaultPlan(events=(
                 KVLinkDegradation(time_s=0.4, scale=0.25,
                                   duration_s=1.5),
                 ReplicaCrash(time_s=1.0, replica_id=2)))),
        poisson_trace(80, 30.0, seed=47, input_choices=(64, 128),
                      output_choices=(16, 32))),
    "multi_turn_prefix_cached": (
        dict(initial_replicas=2, router="prefix_affinity",
             kv_config=kv_blocks(256, enable_prefix_cache=True)),
        multi_turn_trace(8, 4, seed=53, session_rate_hz=4.0,
                         think_time_s=0.3,
                         turn_input_choices=(16, 32),
                         output_choices=(16, 32))),
    "tool_use_fixed": (
        dict(initial_replicas=2, router="least_queue"),
        tool_use_trace(6, 3, seed=59, agent_rate_hz=3.0,
                       tool_wait_s=0.4,
                       turn_input_choices=(16, 32),
                       output_choices=(8, 16))),
}


def run_kernel(kernel, kwargs, trace):
    cluster = ServingCluster(GPT2, kernel=kernel, **kwargs)
    return cluster, cluster.run(trace)


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_event_kernel_reproduces_step_loop(self, name):
        kwargs, trace = CONFIGS[name]
        _, event_report = run_kernel("event", kwargs, trace)
        _, step_report = run_kernel("step", kwargs, trace)
        assert json.dumps(event_report.to_dict(), sort_keys=True) \
            == json.dumps(step_report.to_dict(), sort_keys=True)

    def test_matrix_exercises_every_regime(self):
        """Meta-coverage: the matrix must keep spanning the regimes the
        harness claims to cover."""
        kwargs_list = [kwargs for kwargs, _ in CONFIGS.values()]
        assert sum(1 for k in kwargs_list
                   if k.get("autoscaler") is not None) >= 3
        assert sum(1 for k in kwargs_list
                   if k.get("disaggregation") is not None) >= 4
        assert sum(1 for k in kwargs_list
                   if k.get("kv_config") is not None) >= 5
        assert sum(1 for k in kwargs_list
                   if k.get("disaggregation") is not None
                   and k["disaggregation"].kv_stream_chunks > 1) >= 2
        assert any(k.get("scheduler_config") is not None
                   and k["scheduler_config"].prefill_token_cap is not None
                   for k in kwargs_list)
        routers = {k.get("router", "round_robin") for k in kwargs_list}
        assert {"round_robin", "least_queue", "least_kv_pressure",
                "prefix_affinity", "score"} <= routers
        # Fault injection: crashes on fixed, autoscaled and
        # disaggregated fleets, plus at least one transient fault.
        plans = [k["fault_plan"] for k in kwargs_list
                 if k.get("fault_plan") is not None]
        assert sum(plan.num_crashes > 0 for plan in plans) >= 3
        assert any(plan.num_slow_nodes > 0 for plan in plans)
        assert any(plan.num_kv_link_degradations > 0 for plan in plans)

    def test_faulted_configs_actually_crash_and_retry(self):
        """Regime check: the crash entries must keep losing in-flight
        work and re-dispatching it, or the matrix tests nothing."""
        for name in ("faulted_fixed_crash_slow",
                     "faulted_autoscaled_replacement",
                     "faulted_disagg_kvlink"):
            cluster, report = run_kernel("event", *CONFIGS[name])
            assert report.faults is not None, name
            assert report.faults["crashes"] >= 1, name
            assert cluster.retry_dispatches >= 1, name
            assert report.completed + report.rejected \
                + report.faults["requests_failed"] == report.num_requests

    def test_autoscaler_replaces_crashed_replica(self):
        """The dead replica drops the fleet below min_replicas; the next
        control tick must spawn a warming replacement."""
        _, report = run_kernel(
            "event", *CONFIGS["faulted_autoscaled_replacement"])
        crashed = [row for row in report.to_dict()["replicas"]
                   if row["crashed"]]
        assert len(crashed) == 1
        spawned_after = [life for life in report.lifecycles
                         if life.spawned_s > 0.6]
        assert spawned_after, "no replacement replica spawned after crash"

    def test_conversational_configs_share_prefixes(self):
        """Regime check: the multi-turn entry must keep hitting the
        prefix cache (its turns replay the session context)."""
        _, report = run_kernel("event", *CONFIGS["multi_turn_prefix_cached"])
        assert report.prefix_hit_rate is not None
        assert report.prefix_hit_rate > 0.0

    def test_preempting_config_actually_preempts(self):
        """Regime check: the KV-pressure entry must keep exercising the
        preemption path, or the matrix silently loses that coverage."""
        kwargs, trace = CONFIGS["kv_pressure_preempting"]
        _, report = run_kernel("event", kwargs, trace)
        assert report.preemptions >= 1

    def test_disagg_config_actually_migrates(self):
        kwargs, trace = CONFIGS["disagg_basic"]
        _, report = run_kernel("event", kwargs, trace)
        assert report.kv_migrations == report.num_requests

    def test_streamed_config_actually_streams(self):
        """Regime check: the streamed entries must keep splitting every
        migration into multiple chunk landings."""
        kwargs, trace = CONFIGS["disagg_streamed_kv"]
        cluster, report = run_kernel("event", kwargs, trace)
        chunks = kwargs["disaggregation"].kv_stream_chunks
        assert cluster.kv_chunks_landed == chunks * report.kv_migrations
        assert report.kv_migrations > 0

    def test_stalling_config_actually_stalls(self):
        """Regime check: the slow-link entry must keep driving decode
        into the stream (stall clamp exercised), or the matrix silently
        loses the stall path."""
        kwargs, trace = CONFIGS["disagg_streamed_stalling"]
        _, report = run_kernel("event", kwargs, trace)
        assert report.kv_stall_steps >= 1
        assert report.kv_stall_seconds > 0.0


class TestEventCountRegression:
    def test_event_count_matches_step_iterations(self):
        """On a reference trace the event kernel processes exactly as
        many events as the step loop ran iterations — each step-loop
        iteration handled one arrival/migration/control/step, and the
        event kernel pops the same sequence from its heap.  A drift here
        means one kernel is doing (or skipping) work the other is not,
        even if the reports still happen to agree."""
        for name in ("fixed_least_queue", "autoscaled_slo_flash_crowd",
                     "disagg_basic", "faulted_fixed_crash_slow"):
            kwargs, trace = CONFIGS[name]
            event_cluster, _ = run_kernel("event", kwargs, trace)
            step_cluster, _ = run_kernel("step", kwargs, trace)
            assert event_cluster.events_processed == step_cluster.iterations
            assert sum(event_cluster.event_counts[kind] for kind in
                       ("ARRIVAL", "TRANSFER_LANDED", "CONTROL_TICK",
                        "STEP", "FAULT")) == event_cluster.events_processed

    def test_faulted_run_counts_fault_events(self):
        """Each fault edge is one first-class event in the heap — and one
        step-loop iteration, which is why the parity above still holds."""
        kwargs, trace = CONFIGS["faulted_fixed_crash_slow"]
        cluster, _ = run_kernel("event", kwargs, trace)
        # One crash plus a slow-node onset/restore pair = 3 edges.
        assert cluster.event_counts["FAULT"] == 3

    def test_step_kernel_does_not_touch_event_instrumentation(self):
        kwargs, trace = CONFIGS["single_replica"]
        cluster, _ = run_kernel("step", kwargs, trace)
        assert cluster.events_processed == 0
        assert cluster.iterations > 0


class TestFaultPlanGating:
    """An empty plan — or no plan at all — must leave every report
    byte-identical to the pre-fault build: fault support costs nothing
    unless a fault is actually scheduled."""

    @pytest.mark.parametrize("name", ["fixed_least_queue",
                                      "autoscaled_queue_only",
                                      "disagg_streamed_kv",
                                      "score_class_mix"])
    def test_empty_plan_is_byte_identical_to_no_plan(self, name):
        kwargs, trace = CONFIGS[name]
        _, baseline = run_kernel("event", kwargs, trace)
        _, with_none = run_kernel("event", dict(kwargs, fault_plan=None),
                                  trace)
        _, with_empty = run_kernel(
            "event", dict(kwargs, fault_plan=FaultPlan()), trace)
        reference = json.dumps(baseline.to_dict(), sort_keys=True)
        assert json.dumps(with_none.to_dict(), sort_keys=True) == reference
        assert json.dumps(with_empty.to_dict(), sort_keys=True) == reference

    def test_empty_plan_is_falsy_and_schedules_nothing(self):
        assert not FaultPlan()
        assert FaultPlan().actions() == []
        assert FaultPlan(events=(ReplicaCrash(1.0, 0),))


class TestReportShape:
    """The numpy metrics refactor moved sample accumulation to columnar
    buffers; the report JSON it emits must not have changed shape."""

    CLUSTER_KEYS = {
        "autoscaled", "completed", "e2e_latency_ms", "fleet_tokens_per_s",
        "makespan_s", "manifest", "model", "num_requests", "peak_replicas",
        "preemptions", "queue_wait_ms", "rejected",
        "replica_count_timeline", "replica_seconds", "replicas", "router",
        "total_output_tokens", "tpot_ms", "ttft_ms",
    }
    REPLICA_KEYS = {
        "aggregate_tokens_per_s", "completed", "devices", "e2e_latency_ms",
        "makespan_s", "mean_kv_utilization", "mean_queue_depth", "model",
        "num_devices", "num_requests", "peak_kv_utilization",
        "peak_queue_depth", "preemption_events", "preemptions",
        "queue_wait_ms", "rejected", "total_output_tokens", "tpot_ms",
        "ttft_ms",
    }
    LATENCY_KEYS = {"count", "max", "mean", "p50", "p95", "p99"}

    def test_cluster_report_dict_shape_unchanged(self):
        kwargs, trace = CONFIGS["fixed_least_queue"]
        cluster, report = run_kernel("event", kwargs, trace)
        payload = report.to_dict()
        assert set(payload) == self.CLUSTER_KEYS
        # The run manifest is always on (deliberate PR 9 shape change);
        # untraced runs grow no other key — "telemetry" stays gated.
        assert payload["manifest"]["component"] == "cluster"
        assert "telemetry" not in payload
        assert set(payload["ttft_ms"]) == self.LATENCY_KEYS
        assert set(payload["tpot_ms"]) == self.LATENCY_KEYS
        assert set(report.replica_reports[0].to_dict()) == self.REPLICA_KEYS
        # Everything in the serialized report is plain JSON scalars —
        # no numpy types may leak through the columnar buffers.
        json.dumps(payload)
        for value in payload.values():
            assert type(value) in (str, int, float, bool, list, dict)

    def test_class_mix_report_adds_only_class_keys(self):
        """A class-mixed run grows exactly the two gated sections; a
        classless run (above) keeps the PR 6 shape byte-identical."""
        kwargs, trace = CONFIGS["score_class_mix"]
        _, report = run_kernel("event", kwargs, trace)
        payload = report.to_dict()
        assert set(payload) == self.CLUSTER_KEYS | {"slo_classes",
                                                    "fairness"}
        assert set(payload["fairness"]) == {"jain_index",
                                            "class_weighted_attainment"}
        json.dumps(payload)

    FAULT_KEYS = {"crashes", "slow_nodes", "kv_link_degradations",
                  "retries", "max_retries", "requests_failed",
                  "recovery_ttft_ms"}

    def test_faulted_report_adds_only_fault_keys(self):
        """A faulted run grows exactly the gated ``faults`` section (plus
        the per-replica ``crashed`` flag); everything else keeps shape."""
        kwargs, trace = CONFIGS["faulted_fixed_crash_slow"]
        _, report = run_kernel("event", kwargs, trace)
        payload = report.to_dict()
        assert set(payload) == self.CLUSTER_KEYS | {"faults"}
        assert set(payload["faults"]) == self.FAULT_KEYS
        assert set(payload["faults"]["recovery_ttft_ms"]) \
            == self.LATENCY_KEYS
        for row in payload["replicas"]:
            assert "crashed" in row
        # The plan itself is pinned into the manifest for provenance.
        assert payload["manifest"]["faults"]["max_retries"] == 3
        json.dumps(payload)

    def test_unfaulted_report_has_no_fault_keys(self):
        kwargs, trace = CONFIGS["fixed_least_queue"]
        _, report = run_kernel("event", kwargs, trace)
        payload = report.to_dict()
        assert "faults" not in payload
        assert "faults" not in payload["manifest"]
        for row in payload["replicas"]:
            assert "crashed" not in row
