"""Tests for prefill/decode disaggregation: roles, KV hand-off, per-role
autoscaling, and the unified tier's byte-for-byte stability."""

import json

import pytest

from repro.models.config import GPT2
from repro.serving import (
    DisaggregationConfig,
    KVCacheConfig,
    ServingCluster,
    ServingEngine,
)
from repro.serving.cluster import AutoscalerConfig, ReplicaRole
from repro.serving.cluster.replica import EngineReplica, resolve_replica_role
from repro.serving.workload_gen import TimedRequest, poisson_trace
from repro.models.workload import Workload


def decode_heavy_trace(num_requests=24, rate=30.0, seed=0):
    """Short prompts, long outputs: the regime disaggregation exists for."""
    return poisson_trace(num_requests, rate, seed=seed,
                         input_choices=(32, 64),
                         output_choices=(96, 128))


def disaggregated(prefill=1, decode=2, **kwargs):
    return ServingCluster(GPT2, disaggregation=DisaggregationConfig(
        prefill_replicas=prefill, decode_replicas=decode), **kwargs)


class TestConfigValidation:
    def test_pool_sizes_validated(self):
        with pytest.raises(ValueError, match="prefill_replicas"):
            DisaggregationConfig(prefill_replicas=0)
        with pytest.raises(ValueError, match="decode_replicas"):
            DisaggregationConfig(decode_replicas=0)

    def test_transfer_bandwidth_validated(self):
        with pytest.raises(ValueError, match="kv_transfer_gbs"):
            DisaggregationConfig(kv_transfer_gbs=0.0)

    def test_initial_replicas_conflict_rejected(self):
        with pytest.raises(ValueError, match="initial_replicas"):
            ServingCluster(GPT2, initial_replicas=5,
                           disaggregation=DisaggregationConfig())

    def test_matching_initial_replicas_accepted(self):
        ServingCluster(GPT2, initial_replicas=2,
                       disaggregation=DisaggregationConfig())

    def test_autoscaler_bounds_apply_per_pool(self):
        with pytest.raises(ValueError, match="decode_replicas=3"):
            ServingCluster(GPT2,
                           disaggregation=DisaggregationConfig(
                               prefill_replicas=1, decode_replicas=3),
                           autoscaler=AutoscalerConfig(max_replicas=2))

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown replica role"):
            resolve_replica_role("both")
        assert resolve_replica_role("decode") is ReplicaRole.DECODE
        assert resolve_replica_role(ReplicaRole.PREFILL) \
            is ReplicaRole.PREFILL

    def test_replica_defaults_to_unified(self):
        assert EngineReplica(0, GPT2).role is ReplicaRole.UNIFIED


class TestTwoStageFlow:
    def test_all_requests_complete(self):
        report = disaggregated().run(decode_heavy_trace())
        assert report.completed == 24
        assert report.disaggregated

    def test_every_multi_token_request_migrates_exactly_once(self):
        trace = decode_heavy_trace()
        cluster = disaggregated()
        report = cluster.run(trace)
        assert report.kv_migrations == len(trace)
        for request in cluster.replicas[0].requests:
            assert request.migrations == 1
            assert request.migration_ready_s is not None

    def test_first_tokens_land_on_prefill_decodes_on_decode(self):
        cluster = disaggregated()
        cluster.run(decode_heavy_trace())
        prefill = [r for r in cluster.replicas
                   if r.role is ReplicaRole.PREFILL]
        decode = [r for r in cluster.replicas
                  if r.role is ReplicaRole.DECODE]
        # Every first token is emitted by the prefill pool...
        assert sum(len(r.worker.ttft_samples) for r in prefill) == 24
        assert all(not r.worker.ttft_samples for r in decode)
        # ...and every completion (TPOT sample) by the decode pool.
        assert sum(len(r.worker.tpot_samples) for r in decode) == 24
        assert sum(r.worker.migrated_in for r in decode) == 24
        assert sum(r.worker.handoff_count for r in prefill) == 24

    def test_single_token_outputs_finish_on_prefill_without_migration(self):
        trace = [TimedRequest(0, Workload(32, 1), 0.0),
                 TimedRequest(1, Workload(64, 1), 0.1)]
        cluster = disaggregated()
        report = cluster.run(trace)
        assert report.completed == 2
        assert report.kv_migrations == 0
        assert cluster.replicas[0].worker.served == 2

    def test_decode_starts_only_after_transfer_lands(self):
        """With a crawling interconnect the hand-off dominates: first
        tokens are unaffected but completions wait on the wire."""
        trace = decode_heavy_trace(num_requests=8)
        fast = ServingCluster(GPT2, disaggregation=DisaggregationConfig(
            kv_transfer_gbs=1000.0, decode_replicas=2)).run(trace)
        slow = ServingCluster(GPT2, disaggregation=DisaggregationConfig(
            kv_transfer_gbs=0.05, decode_replicas=2)).run(trace)
        assert slow.kv_transfer_seconds > 100 * fast.kv_transfer_seconds
        assert slow.ttft.p95 == pytest.approx(fast.ttft.p95)
        assert slow.e2e_latency.mean > fast.e2e_latency.mean
        cluster = ServingCluster(GPT2, disaggregation=DisaggregationConfig(
            kv_transfer_gbs=0.05, decode_replicas=2))
        cluster.run(trace)
        for request in cluster.replicas[0].requests:
            if request.migrations:
                assert request.enqueue_s == request.migration_ready_s
                assert request.migration_ready_s > request.first_token_s

    def test_transfer_bytes_priced_from_session_kv_rows(self):
        trace = [TimedRequest(0, Workload(32, 8), 0.0)]
        cluster = disaggregated(decode=1)
        report = cluster.run(trace)
        session = cluster.replicas[0].worker.session
        # Resident KV at hand-off: the 32-token prompt + the first token.
        assert report.kv_bytes_transferred == pytest.approx(
            33 * session.kv_bytes_per_token)

    def test_rerun_byte_identical(self):
        trace = decode_heavy_trace()
        cluster = disaggregated()
        assert json.dumps(cluster.run(trace).to_dict(), sort_keys=True) \
            == json.dumps(cluster.run(trace).to_dict(), sort_keys=True)


class TestKVHandoffAccounting:
    def kv_cluster(self, capacity_mb=64.0):
        return ServingCluster(
            GPT2, kv_config=KVCacheConfig.from_capacity_mb(capacity_mb),
            disaggregation=DisaggregationConfig(prefill_replicas=1,
                                                decode_replicas=2))

    def test_exports_and_imports_balance(self):
        cluster = self.kv_cluster()
        report = cluster.run(decode_heavy_trace())
        prefill = cluster.replicas[0].worker.manager
        decodes = [r.worker.manager for r in cluster.replicas[1:]]
        assert prefill.kv_exports == report.kv_migrations == 24
        assert sum(m.kv_imports for m in decodes) == 24
        assert prefill.blocks_exported > 0
        assert all(m.blocks_imported > 0 for m in decodes if m.kv_imports)

    def test_pools_drain_dry(self):
        cluster = self.kv_cluster()
        cluster.run(decode_heavy_trace())
        for replica in cluster.replicas:
            assert replica.worker.manager.used_blocks == 0

    def test_decode_pressure_preempts_and_still_completes(self):
        trace = poisson_trace(24, 60.0, seed=0, input_choices=(96, 128),
                              output_choices=(96, 128))
        cluster = self.kv_cluster(capacity_mb=16.0)
        report = cluster.run(trace)
        assert report.completed == 24
        assert report.preemptions > 0, "regime check: pressure expected"


class TestUnifiedModeUnchanged:
    """disaggregation=None must stay the PR 4 tier byte-for-byte."""

    def test_no_disaggregation_keys_in_unified_payload(self):
        report = ServingCluster(GPT2, initial_replicas=2).run(
            decode_heavy_trace(num_requests=8))
        payload = report.to_dict()
        assert "disaggregation" not in payload
        assert all("role" not in entry for entry in payload["replicas"])
        assert not report.disaggregated
        assert report.kv_migrations == 0

    def test_unified_still_matches_single_device_engine(self):
        trace = poisson_trace(16, 20.0, seed=1)
        engine_dict = ServingEngine(GPT2, num_devices=1).run(trace).to_dict()
        replica_dict = ServingCluster(GPT2, initial_replicas=1).run(
            trace).replica_reports[0].to_dict()
        for payload in (engine_dict, replica_dict):
            payload.pop("mean_queue_depth")
            payload.pop("peak_queue_depth")
            payload.pop("manifest", None)
        assert json.dumps(engine_dict, sort_keys=True) \
            == json.dumps(replica_dict, sort_keys=True)


class TestDisaggregatedBeatsUnifiedTTFT:
    def test_p95_ttft_improves_at_equal_replica_count(self):
        """The tentpole claim at test scale (the benchmark asserts it at
        full scale): dedicated prefill replicas protect TTFT from decode
        interference on a saturated decode-heavy trace."""
        trace = poisson_trace(48, 30.0, seed=0, input_choices=(32, 64),
                              output_choices=(128, 256))
        unified = ServingCluster(GPT2, initial_replicas=4).run(trace)
        split = ServingCluster(GPT2, disaggregation=DisaggregationConfig(
            prefill_replicas=2, decode_replicas=2)).run(trace)
        assert unified.completed == split.completed == 48
        assert split.ttft.p95 < unified.ttft.p95


class TestPerRoleAutoscaling:
    def autoscaler(self, **kwargs):
        defaults = dict(min_replicas=1, max_replicas=3, warmup_s=0.2,
                        control_interval_s=0.1, cooldown_s=0.2)
        defaults.update(kwargs)
        return AutoscalerConfig(**defaults)

    def test_prefill_pool_scales_on_backlog(self):
        cluster = disaggregated(prefill=1, decode=2,
                                autoscaler=self.autoscaler())
        report = cluster.run(poisson_trace(
            48, 60.0, seed=0, input_choices=(96, 128),
            output_choices=(16, 32)))
        assert report.completed == 48
        prefill = [r for r in cluster.replicas
                   if r.role is ReplicaRole.PREFILL]
        assert len(prefill) > 1, "prefill-heavy overload should grow pool"
        assert len(report.role_replica_ids("prefill")) == len(prefill)

    def test_decode_pool_scales_on_tpot_slo(self):
        cluster = disaggregated(prefill=1, decode=1,
                                autoscaler=self.autoscaler(
                                    slo_tpot_s=0.008))
        report = cluster.run(decode_heavy_trace(num_requests=32,
                                                rate=40.0))
        assert report.completed == 32
        decode = [r for r in cluster.replicas
                  if r.role is ReplicaRole.DECODE]
        assert len(decode) > 1, "TPOT SLO pressure should grow the pool"

    def test_decode_pool_scales_on_kv_pressure(self):
        cluster = ServingCluster(
            GPT2, kv_config=KVCacheConfig.from_capacity_mb(24.0),
            disaggregation=DisaggregationConfig(prefill_replicas=1,
                                                decode_replicas=1),
            autoscaler=self.autoscaler(kv_pressure_high=0.5))
        report = cluster.run(decode_heavy_trace(num_requests=32,
                                                rate=40.0))
        assert report.completed == 32
        decisions = cluster.decode_autoscaler.decisions
        assert any(d.kv_utilization is not None
                   and d.kv_utilization > 0.5 for d in decisions)
        assert len([r for r in cluster.replicas
                    if r.role is ReplicaRole.DECODE]) > 1

    def test_spawned_replicas_inherit_their_pool_role(self):
        cluster = disaggregated(prefill=1, decode=1,
                                autoscaler=self.autoscaler())
        cluster.run(decode_heavy_trace(num_requests=32, rate=60.0))
        for replica in cluster.replicas:
            assert replica.role in (ReplicaRole.PREFILL,
                                    ReplicaRole.DECODE)

    def test_autoscaled_disaggregated_rerun_byte_identical(self):
        trace = decode_heavy_trace(num_requests=24, rate=40.0)
        def run():
            return disaggregated(prefill=1, decode=1,
                                 autoscaler=self.autoscaler()).run(trace)
        assert json.dumps(run().to_dict(), sort_keys=True) \
            == json.dumps(run().to_dict(), sort_keys=True)


class TestReportSurface:
    def test_disaggregation_section_in_json(self):
        report = disaggregated().run(decode_heavy_trace(num_requests=8))
        payload = json.loads(json.dumps(report.to_dict()))
        section = payload["disaggregation"]
        assert section["prefill_replicas"] == 1
        assert section["decode_replicas"] == 2
        assert section["kv_migrations"] == 8
        assert section["kv_bytes_transferred"] > 0
        assert section["kv_transfer_seconds"] > 0
        roles = [entry["role"] for entry in payload["replicas"]]
        assert roles == ["prefill", "decode", "decode"]

    def test_format_mentions_handoff(self):
        report = disaggregated().run(decode_heavy_trace(num_requests=8))
        text = report.format()
        assert "disaggregated" in text
        assert "kv hand-off" in text
        assert "[prefill]" in text and "[decode]" in text


class TestTimelineControlAtZero:
    def burst_at_zero(self, n=12):
        from repro.models.workload import Workload
        from repro.serving.workload_gen import burst_trace
        return burst_trace([Workload(64, 32)] * n)

    def test_instant_overload_scales_up_at_t0(self):
        """A burst arriving at t=0 is dispatched before the t=0 control
        tick (tie order: arrival first), so the very first evaluation
        sees the backlog and warm-up starts at t=0 — not one control
        interval late."""
        cluster = ServingCluster(
            GPT2, initial_replicas=1, router="least_queue",
            autoscaler=AutoscalerConfig(max_replicas=2, warmup_s=0.1,
                                        control_interval_s=0.25))
        report = cluster.run(self.burst_at_zero())
        first = cluster.autoscaler.decisions[0]
        assert first.time_s == 0.0 and first.action == "up"
        assert report.lifecycles[1].spawned_s == 0.0

    def test_t0_sample_records_post_control_fleet(self):
        """The timeline's t=0 sample is the post-control composition —
        one sample, warming replica included — never the pre-control
        transient alongside it."""
        cluster = ServingCluster(
            GPT2, initial_replicas=1, router="least_queue",
            autoscaler=AutoscalerConfig(max_replicas=2, warmup_s=0.1,
                                        control_interval_s=0.25))
        report = cluster.run(self.burst_at_zero())
        t0 = [s for s in report.timeline if s.time_s == 0.0]
        assert len(t0) == 1, "one (post-control) sample at t=0"
        assert t0[0].active == 1 and t0[0].warming == 1

    def test_no_zero_evidence_scale_down_before_traffic(self):
        """Control ticks before the first dispatch are skipped: an
        over-provisioned idle fleet must not be drained (nor the cooldown
        burned) on zero evidence before the opening traffic arrives."""
        cluster = ServingCluster(
            GPT2, initial_replicas=2, router="least_queue",
            autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=2,
                                        control_interval_s=0.25))
        trace = poisson_trace(8, 20.0, seed=0)
        first_arrival = trace[0].arrival_s
        report = cluster.run(trace)
        decisions = cluster.autoscaler.decisions
        assert decisions, "control loop should run once traffic flows"
        assert decisions[0].time_s >= first_arrival
        assert report.timeline[0].time_s == 0.0
        assert report.timeline[0].active == 2
        assert report.completed == 8
