"""Tests for the SLO-aware autoscaler control policy."""

import pytest

from repro.serving.cluster import Autoscaler, AutoscalerConfig


class TestConfigValidation:
    def test_defaults_valid(self):
        AutoscalerConfig()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(min_replicas=0), "min_replicas"),
        (dict(min_replicas=3, max_replicas=2), "max_replicas"),
        (dict(slo_ttft_s=0.0), "slo_ttft_s"),
        (dict(control_interval_s=0.0), "control_interval_s"),
        (dict(queue_low_per_replica=5.0, queue_high_per_replica=4.0),
         "queue_low_per_replica"),
        (dict(ttft_window_s=0.0), "ttft_window_s"),
        (dict(min_window_samples=0), "min_window_samples"),
        (dict(cooldown_s=-1.0), "cooldown_s"),
        (dict(slo_margin=0.0), "slo_margin"),
        (dict(slo_margin=1.5), "slo_margin"),
        (dict(warmup_s=-0.1), "warmup_s"),
    ])
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AutoscalerConfig(**kwargs)


class TestDecisions:
    def config(self, **kwargs):
        defaults = dict(min_replicas=1, max_replicas=4, cooldown_s=0.0,
                        queue_high_per_replica=4.0,
                        queue_low_per_replica=1.0, min_window_samples=3)
        defaults.update(kwargs)
        return AutoscalerConfig(**defaults)

    def test_deep_queue_scales_up(self):
        scaler = Autoscaler(self.config())
        assert scaler.decide(1.0, queue_depth=10, routable=2,
                             provisioned=2, window_ttfts=[]) == "up"

    def test_queue_normalised_per_routable_replica(self):
        scaler = Autoscaler(self.config())
        assert scaler.decide(1.0, queue_depth=10, routable=4,
                             provisioned=4, window_ttfts=[]) == "hold"

    def test_slo_breach_scales_up(self):
        scaler = Autoscaler(self.config(slo_ttft_s=0.5))
        assert scaler.decide(1.0, queue_depth=0, routable=2, provisioned=2,
                             window_ttfts=[0.9, 1.0, 1.1]) == "up"

    def test_too_few_window_samples_are_neutral(self):
        scaler = Autoscaler(self.config(slo_ttft_s=0.5))
        assert scaler.decide(1.0, queue_depth=0, routable=2, provisioned=2,
                             window_ttfts=[9.0]) == "down"

    def test_shallow_queue_with_slo_margin_scales_down(self):
        scaler = Autoscaler(self.config(slo_ttft_s=1.0))
        assert scaler.decide(1.0, queue_depth=0, routable=3, provisioned=3,
                             window_ttfts=[0.1, 0.2, 0.3]) == "down"

    def test_slo_margin_blocks_scale_down(self):
        # p95 within SLO but above the 0.8 margin: hold, don't flap.
        scaler = Autoscaler(self.config(slo_ttft_s=1.0))
        assert scaler.decide(1.0, queue_depth=0, routable=3, provisioned=3,
                             window_ttfts=[0.9, 0.9, 0.95]) == "hold"

    def test_no_scale_down_without_a_drainable_replica(self):
        """One ACTIVE + one WARMING: provisioned exceeds the minimum but
        draining the only routable replica would leave arrivals nowhere
        to go — the decision must be hold (not a logged-but-unapplied
        down that burns the cooldown)."""
        scaler = Autoscaler(self.config(cooldown_s=1.0))
        assert scaler.decide(1.0, queue_depth=0, routable=1,
                             provisioned=2, window_ttfts=[]) == "hold"
        # The cooldown was not consumed: a real action can fire now.
        assert scaler.decide(1.1, queue_depth=10, routable=1,
                             provisioned=2, window_ttfts=[]) == "up"

    def test_bounds_respected(self):
        scaler = Autoscaler(self.config(max_replicas=2))
        assert scaler.decide(1.0, queue_depth=50, routable=2,
                             provisioned=2, window_ttfts=[]) == "hold"
        scaler = Autoscaler(self.config(min_replicas=2))
        assert scaler.decide(1.0, queue_depth=0, routable=2,
                             provisioned=2, window_ttfts=[]) == "hold"

    def test_cooldown_separates_actions(self):
        scaler = Autoscaler(self.config(cooldown_s=1.0))
        assert scaler.decide(0.0, 10, 1, 1, []) == "up"
        assert scaler.decide(0.5, 10, 1, 1, []) == "hold"
        assert scaler.decide(1.0, 10, 1, 1, []) == "up"

    def test_decisions_recorded(self):
        scaler = Autoscaler(self.config())
        scaler.decide(0.0, 10, 1, 1, [])
        scaler.decide(0.25, 0, 2, 2, [])
        actions = [d.action for d in scaler.decisions]
        assert actions[0] == "up"
        assert scaler.decisions[0].queue_depth == 10
        assert scaler.decisions[1].rolling_p95_ttft_s is None

    def test_rolling_p95_needs_evidence_floor(self):
        scaler = Autoscaler(self.config(min_window_samples=3))
        assert scaler.rolling_p95([1.0, 2.0]) is None
        assert scaler.rolling_p95([1.0, 2.0, 3.0]) == pytest.approx(2.9)


class TestDecodePoolSignals:
    """The disaggregated decode pool's extra decide() inputs: rolling
    TPOT against slo_tpot_s and mean KV occupancy against
    kv_pressure_high."""

    def config(self, **kwargs):
        defaults = dict(min_replicas=1, max_replicas=4, cooldown_s=0.0,
                        queue_high_per_replica=4.0,
                        queue_low_per_replica=1.0, min_window_samples=3)
        defaults.update(kwargs)
        return AutoscalerConfig(**defaults)

    def test_new_knobs_validated(self):
        with pytest.raises(ValueError, match="slo_tpot_s"):
            AutoscalerConfig(slo_tpot_s=0.0)
        with pytest.raises(ValueError, match="kv_pressure_high"):
            AutoscalerConfig(kv_pressure_high=1.5)

    def test_tpot_breach_scales_up(self):
        scaler = Autoscaler(self.config(slo_tpot_s=0.01))
        assert scaler.decide(1.0, queue_depth=0, routable=2, provisioned=2,
                             window_ttfts=[],
                             window_tpots=[0.02, 0.03, 0.04]) == "up"

    def test_tpot_margin_blocks_scale_down(self):
        scaler = Autoscaler(self.config(slo_tpot_s=0.01))
        assert scaler.decide(1.0, queue_depth=0, routable=3, provisioned=3,
                             window_ttfts=[],
                             window_tpots=[0.009, 0.009, 0.0095]) == "hold"

    def test_tpot_with_margin_scales_down(self):
        scaler = Autoscaler(self.config(slo_tpot_s=0.01))
        assert scaler.decide(1.0, queue_depth=0, routable=3, provisioned=3,
                             window_ttfts=[],
                             window_tpots=[0.001, 0.002, 0.003]) == "down"

    def test_kv_pressure_scales_up(self):
        scaler = Autoscaler(self.config(kv_pressure_high=0.8))
        assert scaler.decide(1.0, queue_depth=0, routable=2, provisioned=2,
                             window_ttfts=[], kv_utilization=0.9) == "up"

    def test_kv_pressure_margin_blocks_scale_down(self):
        scaler = Autoscaler(self.config(kv_pressure_high=0.8))
        assert scaler.decide(1.0, queue_depth=0, routable=2, provisioned=2,
                             window_ttfts=[], kv_utilization=0.7) == "hold"

    def test_signals_neutral_when_unconfigured(self):
        """TPOT samples and KV occupancy must not move the classic loop
        unless their thresholds are configured."""
        scaler = Autoscaler(self.config())
        assert scaler.decide(1.0, queue_depth=0, routable=2, provisioned=2,
                             window_ttfts=[],
                             window_tpots=[9.0, 9.0, 9.0],
                             kv_utilization=1.0) == "down"

    def test_decision_records_decode_signals(self):
        scaler = Autoscaler(self.config(slo_tpot_s=0.01,
                                        kv_pressure_high=0.8))
        scaler.decide(1.0, 0, 2, 2, window_ttfts=[],
                      window_tpots=[0.02, 0.02, 0.02], kv_utilization=0.5)
        decision = scaler.decisions[0]
        assert decision.rolling_p95_tpot_s == pytest.approx(0.02)
        assert decision.kv_utilization == 0.5
        assert decision.rolling_p95_ttft_s is None
