"""Tests for cluster routing policies (pure selectors over replica load)."""

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.serving.cluster import ROUTING_POLICIES, resolve_routing_policy
from repro.serving.cluster.router import ClusterRouter
from repro.serving.request import ServingRequest
from repro.models.workload import Workload


@dataclass
class StubReplica:
    """Just the load-signal surface the routing policies read."""

    replica_id: int
    in_system: int = 0
    kv_utilization: float = 0.0
    submitted: list = field(default_factory=list)

    def submit(self, request):
        self.submitted.append(request)


def make_request(request_id=0, prefix_group: Optional[str] = None):
    return ServingRequest(request_id, Workload(16, 8), 0.0,
                          prefix_group=prefix_group,
                          prefix_len=8 if prefix_group else 0)


class TestRegistry:
    def test_known_policies(self):
        assert sorted(ROUTING_POLICIES) == [
            "kv_transfer_aware", "least_kv_pressure", "least_queue",
            "prefix_affinity", "round_robin", "score"]

    def test_resolve_by_name_and_instance(self):
        policy = resolve_routing_policy("least_queue")
        assert policy.name == "least_queue"
        assert resolve_routing_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            resolve_routing_policy("random")


class TestRoundRobin:
    def test_cycles_over_fleet(self):
        policy = resolve_routing_policy("round_robin")
        replicas = [StubReplica(i) for i in range(3)]
        picks = [policy.select_replica(make_request(i), replicas)
                 for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_counter_survives_fleet_growth(self):
        policy = resolve_routing_policy("round_robin")
        replicas = [StubReplica(0), StubReplica(1)]
        assert policy.select_replica(make_request(0), replicas) == 0
        replicas.append(StubReplica(2))
        assert policy.select_replica(make_request(1), replicas) == 1
        assert policy.select_replica(make_request(2), replicas) == 2


class TestLeastQueue:
    def test_fewest_outstanding_wins(self):
        policy = resolve_routing_policy("least_queue")
        replicas = [StubReplica(0, in_system=3), StubReplica(1, in_system=1),
                    StubReplica(2, in_system=2)]
        assert policy.select_replica(make_request(), replicas) == 1

    def test_tie_breaks_on_lowest_id(self):
        policy = resolve_routing_policy("least_queue")
        replicas = [StubReplica(0, in_system=2), StubReplica(1, in_system=2)]
        assert policy.select_replica(make_request(), replicas) == 0


class TestLeastKVPressure:
    def test_lowest_utilization_wins(self):
        policy = resolve_routing_policy("least_kv_pressure")
        replicas = [StubReplica(0, kv_utilization=0.8),
                    StubReplica(1, kv_utilization=0.2),
                    StubReplica(2, kv_utilization=0.5)]
        assert policy.select_replica(make_request(), replicas) == 1

    def test_degrades_to_least_queue_without_kv(self):
        policy = resolve_routing_policy("least_kv_pressure")
        replicas = [StubReplica(0, in_system=4), StubReplica(1, in_system=1)]
        assert policy.select_replica(make_request(), replicas) == 1


class TestPrefixAffinity:
    def test_group_sticks_to_first_choice(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0, in_system=5), StubReplica(1, in_system=0)]
        first = policy.select_replica(make_request(0, "sys-a"), replicas)
        assert first == 1  # least-queue pick for a fresh group
        replicas[1].in_system = 99  # later load must not break the pin
        assert policy.select_replica(make_request(1, "sys-a"), replicas) == 1

    def test_groupless_requests_balance_by_queue(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0, in_system=5), StubReplica(1, in_system=0)]
        assert policy.select_replica(make_request(0), replicas) == 1

    def test_departed_pin_is_reassigned(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0, in_system=1), StubReplica(1, in_system=0)]
        assert policy.select_replica(make_request(0, "sys-a"), replicas) == 1
        survivors = [StubReplica(0, in_system=1)]  # replica 1 drained away
        assert policy.select_replica(make_request(1, "sys-a"),
                                     survivors) == 0

    def test_distinct_groups_spread(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0), StubReplica(1)]
        first = policy.select_replica(make_request(0, "sys-a"), replicas)
        replicas[first].in_system += 1
        second = policy.select_replica(make_request(1, "sys-b"), replicas)
        assert {first, second} == {0, 1}

    def test_pin_evicted_at_groups_last_dispatch(self):
        """The unbounded-growth fix: after observe_trace, a group's pin
        is dropped the moment its last member is dispatched."""
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0), StubReplica(1)]
        trace = [make_request(0, "sys-a"), make_request(1, "sys-a"),
                 make_request(2, "sys-b")]
        policy.observe_trace(trace)
        policy.select_replica(trace[0], replicas)
        assert policy.pinned_groups == 1
        policy.select_replica(trace[1], replicas)   # last of sys-a
        assert policy.pinned_groups == 0
        policy.select_replica(trace[2], replicas)   # only sys-b member
        assert policy.pinned_groups == 0

    def test_pin_map_bounded_by_concurrent_groups(self):
        """A trace naming many sequential groups must not leak one pin
        per group: the map's high-water mark stays at the number of
        concurrently in-flight groups (1 here), however many groups the
        trace names."""
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0), StubReplica(1)]
        trace = [make_request(i, f"group-{i}") for i in range(200)]
        policy.observe_trace(trace)
        for request in trace:
            policy.select_replica(request, replicas)
        assert policy.pinned_groups == 0
        assert policy.peak_pins == 1

    def test_unobserved_groups_keep_their_pins(self):
        """Without observe_trace the last member is unknowable, so pins
        fall back to the old keep-forever behaviour."""
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0), StubReplica(1)]
        policy.select_replica(make_request(0, "sys-a"), replicas)
        assert policy.pinned_groups == 1

    def test_reset_clears_pins_and_counts(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0)]
        trace = [make_request(0, "sys-a")]
        policy.observe_trace(trace)
        policy.select_replica(trace[0], replicas)
        policy.reset()
        assert policy.pinned_groups == 0
        assert policy.peak_pins == 0


class TestScoreAwareRouting:
    def stub(self, replica_id, value_load=0.0, in_system=0):
        replica = StubReplica(replica_id, in_system=in_system)
        replica.value_load = value_load
        return replica

    def test_least_value_load_wins(self):
        policy = resolve_routing_policy("score")
        replicas = [self.stub(0, value_load=16.0, in_system=2),
                    self.stub(1, value_load=3.0, in_system=3)]
        assert policy.select_replica(make_request(), replicas) == 1

    def test_value_ties_break_on_request_count_then_id(self):
        policy = resolve_routing_policy("score")
        replicas = [self.stub(0, value_load=8.0, in_system=4),
                    self.stub(1, value_load=8.0, in_system=1)]
        assert policy.select_replica(make_request(), replicas) == 1
        equal = [self.stub(0), self.stub(1)]
        assert policy.select_replica(make_request(), equal) == 0


class TestClusterRouter:
    def test_dispatch_submits_to_chosen_replica(self):
        router = ClusterRouter("least_queue")
        replicas = [StubReplica(0, in_system=2), StubReplica(1)]
        request = make_request()
        chosen = router.dispatch(request, replicas)
        assert chosen.replica_id == 1
        assert replicas[1].submitted == [request]

    def test_dispatch_requires_routable_replicas(self):
        with pytest.raises(RuntimeError, match="no routable replicas"):
            ClusterRouter().dispatch(make_request(), [])

    def test_policy_choice_validated(self):
        class BadPolicy(ROUTING_POLICIES["least_queue"]):
            name = "bad"

            def select_replica(self, request, replicas):
                return 99

        router = ClusterRouter(BadPolicy())
        with pytest.raises(ValueError, match="chose replica 99"):
            router.dispatch(make_request(), [StubReplica(0)])


class StubKVReplica(StubReplica):
    """StubReplica plus the import-fit and inbound-stream signals
    kv_transfer_aware reads."""

    def __init__(self, replica_id, in_system=0, kv_utilization=0.0,
                 shortfall=0, inbound_kv_bytes=0.0):
        super().__init__(replica_id, in_system=in_system,
                         kv_utilization=kv_utilization)
        self._shortfall = shortfall
        self.inbound_kv_bytes = inbound_kv_bytes

    def kv_shortfall_blocks(self, tokens):
        return self._shortfall if tokens > 0 else 0


def make_migrated_request(request_id=0, kv_tokens=64):
    request = make_request(request_id)
    request.migrated_kv_tokens = kv_tokens
    return request


class TestKVTransferAware:
    def test_fitting_replica_beats_overdrawn_one(self):
        policy = resolve_routing_policy("kv_transfer_aware")
        replicas = [StubKVReplica(0, kv_utilization=0.1, shortfall=4),
                    StubKVReplica(1, kv_utilization=0.9, shortfall=0)]
        assert policy.select_replica(make_migrated_request(), replicas) == 1

    def test_lowest_occupancy_wins_among_fitting(self):
        policy = resolve_routing_policy("kv_transfer_aware")
        replicas = [StubKVReplica(0, kv_utilization=0.6),
                    StubKVReplica(1, kv_utilization=0.2)]
        assert policy.select_replica(make_migrated_request(), replicas) == 1

    def test_fewest_inbound_stream_bytes_wins_among_fitting(self):
        """Streamed hand-offs commit interconnect traffic at dispatch:
        the replica with fewer KV bytes still in flight toward it wins,
        ahead of occupancy and queue depth."""
        policy = resolve_routing_policy("kv_transfer_aware")
        replicas = [StubKVReplica(0, inbound_kv_bytes=2e6),
                    StubKVReplica(1, kv_utilization=0.5, in_system=3,
                                  inbound_kv_bytes=1e4)]
        assert policy.select_replica(make_migrated_request(), replicas) == 1

    def test_shortfall_still_beats_inbound_bytes(self):
        policy = resolve_routing_policy("kv_transfer_aware")
        replicas = [StubKVReplica(0, shortfall=2),
                    StubKVReplica(1, inbound_kv_bytes=5e7)]
        assert policy.select_replica(make_migrated_request(), replicas) == 1

    def test_degrades_to_least_queue_without_kv(self):
        policy = resolve_routing_policy("kv_transfer_aware")
        replicas = [StubKVReplica(0, in_system=4), StubKVReplica(1)]
        assert policy.select_replica(make_migrated_request(), replicas) == 1
        # A fresh (non-migrated) request behaves the same way.
        assert policy.select_replica(make_request(), replicas) == 1


class TestTieBreakDeterminism:
    """Under perfectly equal load every policy must resolve ties on the
    lowest replica id, so a fleet of equals is routed identically on
    every run (no dict-order or float incidentals)."""

    def equal_fleet(self):
        return [StubReplica(0), StubReplica(1), StubReplica(2)]

    def test_all_stateless_policies_pick_lowest_id_on_full_tie(self):
        for name in ["least_queue", "least_kv_pressure", "prefix_affinity"]:
            policy = resolve_routing_policy(name)
            assert policy.select_replica(make_request(), self.equal_fleet()) \
                == 0, name
        kv_policy = resolve_routing_policy("kv_transfer_aware")
        fleet = [StubKVReplica(0), StubKVReplica(1), StubKVReplica(2)]
        assert kv_policy.select_replica(make_migrated_request(), fleet) == 0

    def test_equal_load_choices_replay_identically(self):
        for name in ["round_robin", "least_queue", "least_kv_pressure"]:
            def choices():
                policy = resolve_routing_policy(name)
                return [policy.select_replica(make_request(i),
                                              self.equal_fleet())
                        for i in range(9)]
            assert choices() == choices(), name

    def test_round_robin_reset_restarts_cycle(self):
        policy = resolve_routing_policy("round_robin")
        fleet = self.equal_fleet()
        first = [policy.select_replica(make_request(i), fleet)
                 for i in range(4)]
        policy.reset()
        second = [policy.select_replica(make_request(i), fleet)
                  for i in range(4)]
        assert first[:3] == second[:3] == [0, 1, 2]
