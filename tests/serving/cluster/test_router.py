"""Tests for cluster routing policies (pure selectors over replica load)."""

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.serving.cluster import ROUTING_POLICIES, resolve_routing_policy
from repro.serving.cluster.router import ClusterRouter
from repro.serving.request import ServingRequest
from repro.models.workload import Workload


@dataclass
class StubReplica:
    """Just the load-signal surface the routing policies read."""

    replica_id: int
    in_system: int = 0
    kv_utilization: float = 0.0
    submitted: list = field(default_factory=list)

    def submit(self, request):
        self.submitted.append(request)


def make_request(request_id=0, prefix_group: Optional[str] = None):
    return ServingRequest(request_id, Workload(16, 8), 0.0,
                          prefix_group=prefix_group,
                          prefix_len=8 if prefix_group else 0)


class TestRegistry:
    def test_known_policies(self):
        assert sorted(ROUTING_POLICIES) == [
            "least_kv_pressure", "least_queue", "prefix_affinity",
            "round_robin"]

    def test_resolve_by_name_and_instance(self):
        policy = resolve_routing_policy("least_queue")
        assert policy.name == "least_queue"
        assert resolve_routing_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            resolve_routing_policy("random")


class TestRoundRobin:
    def test_cycles_over_fleet(self):
        policy = resolve_routing_policy("round_robin")
        replicas = [StubReplica(i) for i in range(3)]
        picks = [policy.select_replica(make_request(i), replicas)
                 for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_counter_survives_fleet_growth(self):
        policy = resolve_routing_policy("round_robin")
        replicas = [StubReplica(0), StubReplica(1)]
        assert policy.select_replica(make_request(0), replicas) == 0
        replicas.append(StubReplica(2))
        assert policy.select_replica(make_request(1), replicas) == 1
        assert policy.select_replica(make_request(2), replicas) == 2


class TestLeastQueue:
    def test_fewest_outstanding_wins(self):
        policy = resolve_routing_policy("least_queue")
        replicas = [StubReplica(0, in_system=3), StubReplica(1, in_system=1),
                    StubReplica(2, in_system=2)]
        assert policy.select_replica(make_request(), replicas) == 1

    def test_tie_breaks_on_lowest_id(self):
        policy = resolve_routing_policy("least_queue")
        replicas = [StubReplica(0, in_system=2), StubReplica(1, in_system=2)]
        assert policy.select_replica(make_request(), replicas) == 0


class TestLeastKVPressure:
    def test_lowest_utilization_wins(self):
        policy = resolve_routing_policy("least_kv_pressure")
        replicas = [StubReplica(0, kv_utilization=0.8),
                    StubReplica(1, kv_utilization=0.2),
                    StubReplica(2, kv_utilization=0.5)]
        assert policy.select_replica(make_request(), replicas) == 1

    def test_degrades_to_least_queue_without_kv(self):
        policy = resolve_routing_policy("least_kv_pressure")
        replicas = [StubReplica(0, in_system=4), StubReplica(1, in_system=1)]
        assert policy.select_replica(make_request(), replicas) == 1


class TestPrefixAffinity:
    def test_group_sticks_to_first_choice(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0, in_system=5), StubReplica(1, in_system=0)]
        first = policy.select_replica(make_request(0, "sys-a"), replicas)
        assert first == 1  # least-queue pick for a fresh group
        replicas[1].in_system = 99  # later load must not break the pin
        assert policy.select_replica(make_request(1, "sys-a"), replicas) == 1

    def test_groupless_requests_balance_by_queue(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0, in_system=5), StubReplica(1, in_system=0)]
        assert policy.select_replica(make_request(0), replicas) == 1

    def test_departed_pin_is_reassigned(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0, in_system=1), StubReplica(1, in_system=0)]
        assert policy.select_replica(make_request(0, "sys-a"), replicas) == 1
        survivors = [StubReplica(0, in_system=1)]  # replica 1 drained away
        assert policy.select_replica(make_request(1, "sys-a"),
                                     survivors) == 0

    def test_distinct_groups_spread(self):
        policy = resolve_routing_policy("prefix_affinity")
        replicas = [StubReplica(0), StubReplica(1)]
        first = policy.select_replica(make_request(0, "sys-a"), replicas)
        replicas[first].in_system += 1
        second = policy.select_replica(make_request(1, "sys-b"), replicas)
        assert {first, second} == {0, 1}


class TestClusterRouter:
    def test_dispatch_submits_to_chosen_replica(self):
        router = ClusterRouter("least_queue")
        replicas = [StubReplica(0, in_system=2), StubReplica(1)]
        request = make_request()
        chosen = router.dispatch(request, replicas)
        assert chosen.replica_id == 1
        assert replicas[1].submitted == [request]

    def test_dispatch_requires_routable_replicas(self):
        with pytest.raises(RuntimeError, match="no routable replicas"):
            ClusterRouter().dispatch(make_request(), [])

    def test_policy_choice_validated(self):
        class BadPolicy(ROUTING_POLICIES["least_queue"]):
            name = "bad"

            def select_replica(self, request, replicas):
                return 99

        router = ClusterRouter(BadPolicy())
        with pytest.raises(ValueError, match="chose replica 99"):
            router.dispatch(make_request(), [StubReplica(0)])
