"""Property-based invariant sweep for the event kernel.

Where the differential suite checks a dozen hand-picked configurations
byte-for-byte, this sweep drives the kernel through 200+ *randomly
generated* cluster shapes (fleet size, router, KV sizing, autoscaling,
disaggregation — all drawn from a per-case seeded RNG) and asserts the
structural invariants that must hold on every one of them:

* events are delivered in nondecreasing ``(time, kind, tie)`` order;
* per-replica step times never regress (no replica's clock runs
  backwards);
* exactly one ARRIVAL event per trace request, and exactly
  ``kv_stream_chunks`` TRANSFER_LANDED events per KV migration (one for
  a monolithic hand-off);
* no request decodes before its KV migration lands
  (``first_token_s <= kv_first_chunk_s <= migration_ready_s <=
  finish_s``);
* conservation: every request is either completed or rejected.

Each case is tiny (≤ 30 requests) so the whole sweep stays in tier-1
time, and the generator is pure ``random.Random(case_seed)`` — a failing
seed reproduces exactly.
"""

import random

import pytest

from repro.models.config import GPT2
from repro.serving import KVCacheConfig
from repro.serving.cluster import (
    AutoscalerConfig,
    DisaggregationConfig,
    EventKind,
    ServingCluster,
)
from repro.serving.workload_gen import poisson_trace

NUM_CASES = 220
PER_TOKEN = GPT2.kv_cache_bytes_per_token()


def random_case(rng):
    """One random cluster configuration + trace, drawn from ``rng``."""
    kwargs = {}
    if rng.random() < 0.30:
        kwargs["disaggregation"] = DisaggregationConfig(
            prefill_replicas=rng.randint(1, 2),
            decode_replicas=rng.randint(1, 2),
            decode_router=rng.choice(("round_robin", "least_queue")),
            # Half the disaggregated draws stream the hand-off; a slow
            # link makes chunk landings (and decode stalls) observable.
            kv_stream_chunks=rng.choice((1, 1, 3, 6)),
            kv_transfer_gbs=rng.choice((None, 0.05, 0.02)))
        kwargs["router"] = rng.choice(("round_robin", "least_queue"))
    else:
        kwargs["initial_replicas"] = rng.randint(1, 3)
        kwargs["router"] = rng.choice(
            ("round_robin", "least_queue", "least_kv_pressure"))
    if rng.random() < 0.40:
        blocks = rng.randint(64, 256)
        kwargs["kv_config"] = KVCacheConfig(
            capacity_bytes=blocks * 16 * PER_TOKEN, block_size=16)
    if rng.random() < 0.30:
        # Autoscaler bounds apply per pool: cover the largest one drawn.
        disagg = kwargs.get("disaggregation")
        largest_pool = kwargs.get("initial_replicas", 1) if disagg is None \
            else max(disagg.prefill_replicas, disagg.decode_replicas)
        kwargs["autoscaler"] = AutoscalerConfig(
            min_replicas=1, max_replicas=rng.randint(largest_pool + 1, 5),
            slo_ttft_s=rng.choice((None, 0.5)),
            warmup_s=rng.uniform(0.05, 0.3))
    trace = poisson_trace(rng.randint(5, 30), rng.uniform(10.0, 80.0),
                          seed=rng.randint(0, 2**31),
                          input_choices=(16, 32, 64),
                          output_choices=(8, 16, 32))
    return kwargs, trace


def run_case(case_seed):
    rng = random.Random(case_seed)
    kwargs, trace = random_case(rng)
    cluster = ServingCluster(GPT2, kernel="event", **kwargs)
    cluster.record_events = True
    report = cluster.run(trace)
    return cluster, report, kwargs, trace


@pytest.mark.parametrize("case_seed", range(NUM_CASES))
def test_kernel_invariants(case_seed):
    cluster, report, kwargs, trace = run_case(case_seed)
    log = cluster.last_event_log
    assert log is not None and len(log) == cluster.events_processed

    # Events left the queue in deterministic nondecreasing key order.
    for earlier, later in zip(log, log[1:]):
        assert earlier.key <= later.key, \
            f"seed {case_seed}: event order regressed"

    # A replica's steps never run backwards in time.
    last_step = {}
    for event in log:
        if event.kind is EventKind.STEP:
            replica_id = event.payload.replica_id
            assert last_step.get(replica_id, 0.0) <= event.time_s, \
                f"seed {case_seed}: replica {replica_id} clock regressed"
            last_step[replica_id] = event.time_s

    counts = cluster.event_counts
    assert counts["ARRIVAL"] == report.num_requests == len(trace)
    # One TRANSFER_LANDED per chunk; a monolithic hand-off is one chunk,
    # and the cluster's own chunk tally must agree with the event log.
    disagg = kwargs.get("disaggregation")
    chunks = disagg.kv_stream_chunks if disagg is not None else 1
    assert counts["TRANSFER_LANDED"] == cluster.kv_chunks_landed
    assert counts["TRANSFER_LANDED"] == chunks * cluster.kv_migrations
    # Synchronous drain-completes only fire for replicas that actually
    # stopped (a drain victim idle at decision time stops inside
    # ``drain()`` itself, without a DRAIN_COMPLETE tally).
    assert counts["DRAIN_COMPLETE"] <= sum(
        1 for replica in cluster.replicas
        if replica.stopped_s is not None)

    # Conservation: the fleet accounts for every request exactly once.
    assert report.completed + report.rejected == report.num_requests

    # Disaggregation causality: a migrated request produced its first
    # (prefill) token before any KV chunk landed, its stream landed in
    # order (first chunk <= final chunk), and it finished decoding only
    # after the final chunk — stalling the decode clock if necessary.
    for event in log:
        if event.kind is EventKind.TRANSFER_LANDED:
            request = event.payload.request
            assert request.kv_first_chunk_s <= event.time_s
            assert event.time_s <= request.migration_ready_s
            if event.payload.final:
                assert request.migration_ready_s == event.time_s
            assert request.first_token_s <= request.kv_first_chunk_s
            assert request.kv_first_chunk_s <= request.migration_ready_s
            if request.finish_s is not None:
                assert request.migration_ready_s <= request.finish_s


def test_sweep_covers_every_regime():
    """Meta-check on the generator: across the sweep's seeds the random
    draws must actually produce disaggregated, autoscaled and
    KV-constrained fleets — otherwise the 'sweep' quietly degenerates to
    one regime and the parametrized assertions above prove less than
    this module claims."""
    regimes = {"disaggregation": 0, "autoscaler": 0, "kv_config": 0,
               "multi_replica": 0, "streamed_kv": 0}
    for case_seed in range(NUM_CASES):
        kwargs, _ = random_case(random.Random(case_seed))
        for key in ("disaggregation", "autoscaler", "kv_config"):
            regimes[key] += kwargs.get(key) is not None
        if kwargs.get("initial_replicas", 2) > 1 \
                or kwargs.get("disaggregation") is not None:
            regimes["multi_replica"] += 1
        disagg = kwargs.get("disaggregation")
        if disagg is not None and disagg.kv_stream_chunks > 1:
            regimes["streamed_kv"] += 1
    assert all(count >= 20 for count in regimes.values()), regimes


def test_failing_seed_is_reproducible():
    """The generator is a pure function of the case seed: the same seed
    yields the same configuration and trace, so any sweep failure can be
    replayed in isolation."""
    first_kwargs, first_trace = random_case(random.Random(123))
    second_kwargs, second_trace = random_case(random.Random(123))
    assert repr(first_kwargs) == repr(second_kwargs)
    assert [(t.arrival_s, t.workload.input_len, t.workload.output_len)
            for t in first_trace] \
        == [(t.arrival_s, t.workload.input_len, t.workload.output_len)
            for t in second_trace]
