"""Streamed KV hand-off: layer-granular chunk transfers between pools.

PR 5's disaggregated hand-off moved each request's KV as one monolithic
transfer — decode admission waited for the whole payload.  The streamed
hand-off splits the payload into ``kv_stream_chunks`` layer-granular
chunks, dispatches the request to its decode replica the moment the
*first* chunk lands, and stalls the decode clock (a charged wait) only
if decode outruns the stream.  These tests pin:

* the pure split (:func:`split_kv_stream`): exact byte conservation,
  layer clamping, validation;
* ``chunks=1`` is the monolithic hand-off byte-for-byte — the default
  report carries no streaming section at all;
* streamed causality per request
  (``first_token_s <= kv_first_chunk_s <= migration_ready_s <=
  finish_s``) and fleet-level conservation;
* the decode stall path (slow link): stalls are counted, charged, and
  never let a request finish before its KV fully landed;
* streaming actually closes TPOT toward the unified fleet on a
  transfer-bound trace — the mechanism the chunking exists to buy;
* the zero-byte hand-off guard: one immediate degenerate landing, never
  a fan of empty chunk events.
"""

import json

import pytest

from repro.models.config import GPT2
from repro.serving import KVCacheConfig
from repro.serving.cluster import DisaggregationConfig, ServingCluster
from repro.serving.engine import HandoffEvent
from repro.serving.kv_manager import split_kv_stream
from repro.serving.request import ServingRequest
from repro.serving.workload_gen import poisson_trace

PER_TOKEN = GPT2.kv_cache_bytes_per_token()


def kv_blocks(blocks, block_size=16):
    return KVCacheConfig(capacity_bytes=blocks * block_size * PER_TOKEN,
                         block_size=block_size)


def run_cluster(chunks=1, gbs=4.0, kernel="event", trace=None, **kwargs):
    cluster = ServingCluster(
        GPT2, kernel=kernel, router="round_robin",
        disaggregation=DisaggregationConfig(
            prefill_replicas=2, decode_replicas=2,
            kv_transfer_gbs=gbs, kv_stream_chunks=chunks),
        **kwargs)
    if trace is None:
        trace = poisson_trace(48, 30.0, seed=21,
                              input_choices=(32, 64),
                              output_choices=(16, 32))
    return cluster, cluster.run(trace)


class TestSplitKVStream:
    def test_single_chunk_is_the_whole_payload(self):
        assert split_kv_stream(1000.0, num_layers=12, chunks=1) == (1000.0,)

    def test_sum_is_exactly_the_payload(self):
        # The last chunk is constructed as the remainder, so the split
        # conserves bytes *exactly* (not just approximately): billing
        # per chunk must equal billing the monolithic payload.
        for kv_bytes in (36864.0, 999.5, 12 * PER_TOKEN * 37):
            for chunks in (2, 3, 5, 12):
                split = split_kv_stream(kv_bytes, num_layers=12,
                                        chunks=chunks)
                assert sum(split) == kv_bytes
                assert all(size > 0 for size in split)

    def test_chunks_clamped_to_layer_count(self):
        split = split_kv_stream(1200.0, num_layers=3, chunks=8)
        assert len(split) == 3

    def test_even_layer_spans(self):
        # 12 layers in 4 chunks: 3 layers each, so 4 equal slices.
        split = split_kv_stream(1200.0, num_layers=12, chunks=4)
        assert split == (300.0, 300.0, 300.0, 1200.0 - 900.0)

    def test_zero_bytes_collapse_to_one_chunk(self):
        assert split_kv_stream(0.0, num_layers=12, chunks=6) == (0.0,)

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk"):
            split_kv_stream(100.0, num_layers=12, chunks=0)
        with pytest.raises(ValueError, match="layer"):
            split_kv_stream(100.0, num_layers=0, chunks=2)


class TestMonolithicUnchanged:
    def test_chunks_1_matches_default_config_byte_for_byte(self):
        _, explicit = run_cluster(chunks=1)
        cluster = ServingCluster(
            GPT2, kernel="event", router="round_robin",
            disaggregation=DisaggregationConfig(
                prefill_replicas=2, decode_replicas=2,
                kv_transfer_gbs=4.0))
        default = cluster.run(poisson_trace(48, 30.0, seed=21,
                                            input_choices=(32, 64),
                                            output_choices=(16, 32)))
        assert json.dumps(explicit.to_dict(), sort_keys=True) \
            == json.dumps(default.to_dict(), sort_keys=True)

    def test_monolithic_report_has_no_streaming_section(self):
        _, report = run_cluster(chunks=1)
        assert "kv_streaming" not in report.to_dict()["disaggregation"]
        assert "kv streaming" not in report.format()

    def test_streamed_report_exposes_streaming_section(self):
        cluster, report = run_cluster(chunks=4, gbs=0.1)
        section = report.to_dict()["disaggregation"]["kv_streaming"]
        assert section["chunks_per_migration"] == 4
        assert section["chunks_landed"] == cluster.kv_chunks_landed
        assert section["chunks_landed"] == 4 * report.kv_migrations
        assert "kv streaming" in report.format()


class TestStreamedCausality:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_chunk_timestamps_bracket_decode(self, seed):
        trace = poisson_trace(40, 35.0, seed=seed,
                              input_choices=(32, 64, 128),
                              output_choices=(8, 16, 32))
        cluster, report = run_cluster(chunks=6, gbs=0.05, trace=trace)
        assert report.completed + report.rejected == report.num_requests
        migrated = 0
        for replica in cluster.replicas:
            for request in replica.requests:
                if request.migration_ready_s is None:
                    continue
                migrated += 1
                assert request.first_token_s <= request.kv_first_chunk_s
                assert request.kv_first_chunk_s <= request.migration_ready_s
                if request.finish_s is not None:
                    assert request.migration_ready_s <= request.finish_s
        assert migrated > 0

    def test_streaming_conserves_transferred_bytes(self):
        _, mono = run_cluster(chunks=1)
        _, streamed = run_cluster(chunks=6)
        assert streamed.kv_bytes_transferred == mono.kv_bytes_transferred
        assert streamed.kv_migrations == mono.kv_migrations


class TestDecodeStall:
    def test_slow_link_stalls_decode_but_never_breaks_causality(self):
        cluster, report = run_cluster(chunks=6, gbs=0.01)
        assert report.kv_stall_steps >= 1
        assert report.kv_stall_seconds > 0.0
        # The stall is a charged wait: it shows up in replica busy time
        # (capacity), not as free time travel.
        assert report.kv_stall_seconds == pytest.approx(
            sum(replica.worker.kv_stall_s for replica in cluster.replicas))

    def test_fast_link_stall_time_is_negligible(self):
        # A lone just-admitted request can still out-run the tail of its
        # own stream by microseconds (dispatch rides the first chunk),
        # so a fast link bounds the stall *time* near zero rather than
        # eliminating every deferral step.
        _, report = run_cluster(chunks=6, gbs=64.0)
        assert report.kv_stall_seconds < 1e-3


class TestStreamingClosesTheGap:
    def test_streamed_tpot_beats_monolithic_on_transfer_bound_trace(self):
        # A monolithic hand-off keeps the request out of the decode
        # queue until the whole payload landed, so its TPOT pays
        # transfer *plus* queue wait in series.  Streaming dispatches at
        # the first chunk: the request queues while its KV is still on
        # the wire, and a busy decode pool absorbs all but the first
        # chunk's latency — the overlap needs queue wait comparable to
        # the transfer time, hence the saturated trace.
        trace = poisson_trace(48, 60.0, seed=7,
                              input_choices=(128,),
                              output_choices=(32,))
        _, mono = run_cluster(chunks=1, gbs=0.1, trace=trace)
        _, streamed = run_cluster(chunks=12, gbs=0.1, trace=trace)
        assert streamed.tpot.mean < mono.tpot.mean


class _FakePrefillReplica:
    def __init__(self, handoffs):
        self._handoffs = handoffs

    def take_handoffs(self):
        handoffs, self._handoffs = self._handoffs, []
        return handoffs


class TestZeroByteGuard:
    def test_zero_byte_handoff_lands_immediately_as_one_chunk(self):
        cluster, _ = run_cluster(chunks=6, kernel="step")
        request = ServingRequest(999, poisson_trace(1, 1.0)[0].workload,
                                 arrival_s=0.0)
        handoff = HandoffEvent(request=request, time_s=2.5, kv_tokens=0,
                               kv_bytes=0.0, chunk_bytes=())
        before = cluster.kv_migrations
        cluster._price_migrations(_FakePrefillReplica([handoff]))
        assert cluster.kv_migrations == before + 1
        # One degenerate chunk, landing at the hand-off instant — not a
        # fan of six zero-byte chunk events.
        land_s, _, chunk = cluster._migrations[-1]
        assert land_s == 2.5
        assert chunk.index == 0 and chunk.final
        assert request.kv_first_chunk_s == 2.5
        assert request.migration_ready_s == 2.5
