"""Tests for per-class cluster reporting, fairness, and the score stack.

Covers the multi-tenant report surface (per-class TTFT/TPOT attainment,
the Jain fairness index, class-weighted attainment, and the JSON gating
that keeps classless reports byte-identical), the empty-sample bugfix (a
class with zero completions serializes as ``null`` attainment instead of
crashing the percentile machinery), full-run determinism of the score
scheduler, and a 100-seed invariant sweep (conservation + no starvation
under the score stack).
"""

import json

import pytest

from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.serving import SchedulerConfig
from repro.serving.cluster import ServingCluster, build_class_outcomes
from repro.serving.cluster.report import ClassOutcome
from repro.serving.metrics import LatencyStats
from repro.serving.request import RequestState, ServingRequest
from repro.serving.slo import SLO_CLASSES
from repro.serving.workload_gen import poisson_trace

MIX = "interactive=1,standard=2,batch=2,best_effort=1"


def finished_request(request_id, slo_class, ttft_s, output_len=8,
                     arrival_s=0.0):
    request = ServingRequest(request_id, Workload(16, output_len),
                             arrival_s,
                             slo_class=SLO_CLASSES[slo_class])
    request.state = RequestState.FINISHED
    request.admitted_s = arrival_s
    request.first_token_s = arrival_s + ttft_s
    request.finish_s = request.first_token_s + 0.01 * (output_len - 1)
    request.tokens_emitted = output_len
    return request


def rejected_request(request_id, slo_class):
    request = ServingRequest(request_id, Workload(16, 8), 0.0,
                             slo_class=SLO_CLASSES[slo_class])
    request.state = RequestState.REJECTED
    return request


def score_cluster(**kwargs):
    return ServingCluster(
        GPT2, initial_replicas=2, router="score",
        scheduler_config=SchedulerConfig(admission="score"),
        preemption="lowest_score", **kwargs)


class TestClassOutcomes:
    def test_grouped_by_class_in_tier_order(self):
        requests = [finished_request(0, "best_effort", 0.1),
                    finished_request(1, "interactive", 0.1),
                    finished_request(2, "standard", 0.1)]
        outcomes = build_class_outcomes(requests)
        assert [o.slo_class.name for o in outcomes] \
            == ["interactive", "standard", "best_effort"]

    def test_unclassed_requests_are_skipped(self):
        unclassed = ServingRequest(0, Workload(16, 8), 0.0)
        unclassed.state = RequestState.FINISHED
        assert build_class_outcomes([unclassed]) == []

    def test_attainment_judged_against_own_class_target(self):
        # 0.5 s TTFT misses interactive (0.3 s) but makes batch (4 s).
        outcomes = build_class_outcomes([
            finished_request(0, "interactive", 0.5),
            finished_request(1, "batch", 0.5)])
        by_name = {o.slo_class.name: o for o in outcomes}
        assert by_name["interactive"].ttft_attained == 0
        assert by_name["interactive"].ttft_attainment == 0.0
        assert by_name["batch"].ttft_attained == 1
        assert by_name["batch"].ttft_attainment == 1.0

    def test_rejections_counted_but_not_judged(self):
        outcomes = build_class_outcomes([
            finished_request(0, "standard", 0.2),
            rejected_request(1, "standard")])
        (outcome,) = outcomes
        assert outcome.submitted == 2
        assert outcome.completed == 1
        assert outcome.rejected == 1
        assert outcome.ttft_attained == 1

    def test_single_token_outputs_excluded_from_tpot(self):
        outcomes = build_class_outcomes([
            finished_request(0, "standard", 0.2, output_len=1),
            finished_request(1, "standard", 0.2, output_len=8)])
        (outcome,) = outcomes
        assert outcome.tpot_eligible == 1
        assert outcome.tpot_attained is not None


class TestEmptySampleBugfix:
    """percentile() raises on empty input; a class with zero completions
    must serialize as null attainment instead of crashing the report."""

    def test_zero_completion_class_reports_null_not_crash(self):
        outcomes = build_class_outcomes([
            finished_request(0, "interactive", 0.1),
            rejected_request(1, "best_effort")])
        by_name = {o.slo_class.name: o for o in outcomes}
        starved = by_name["best_effort"]
        assert starved.completed == 0
        assert starved.ttft_attained is None
        assert starved.ttft_attainment is None
        assert starved.tpot_attainment is None
        assert starved.ttft.count == 0
        payload = starved.to_dict()
        assert payload["ttft_attained"] is None      # json null
        assert payload["ttft_attainment"] is None
        json.dumps(payload)

    def test_all_single_token_class_reports_null_tpot(self):
        outcomes = build_class_outcomes([
            finished_request(0, "batch", 0.2, output_len=1)])
        (outcome,) = outcomes
        assert outcome.ttft_attainment == 1.0
        assert outcome.tpot_attained is None
        assert outcome.tpot_attainment is None

    def test_cluster_run_with_absent_class_mix(self):
        """End to end: a mix naming only some classes yields a report
        with only those classes' sections, serializable and formattable
        even though the others never appear."""
        trace = poisson_trace(30, 25.0, seed=3,
                              slo_class_mix="interactive=1,best_effort=1")
        report = score_cluster().run(trace)
        names = {o.slo_class.name for o in report.class_outcomes}
        assert names <= {"interactive", "best_effort"}
        assert "batch" not in json.loads(
            json.dumps(report.to_dict()))["slo_classes"]
        report.format()


class TestFairnessMetrics:
    def outcome(self, name, completed, attained):
        return ClassOutcome(
            slo_class=SLO_CLASSES[name], submitted=completed,
            completed=completed, rejected=0,
            ttft=LatencyStats.empty(), tpot=LatencyStats.empty(),
            ttft_attained=attained, tpot_attained=None,
            tpot_eligible=0)

    def report_with(self, outcomes):
        import dataclasses

        from repro.serving.cluster.report import ClusterReport
        stats = LatencyStats.empty()
        report = ClusterReport(
            model="gpt2", router="score", autoscaled=False,
            num_requests=0, completed=0, rejected=0,
            total_output_tokens=0, makespan_s=0.0, end_s=0.0,
            ttft=stats, tpot=stats, e2e_latency=stats, queue_wait=stats)
        return dataclasses.replace(report, class_outcomes=outcomes)

    def test_jain_one_when_classes_attain_equally(self):
        report = self.report_with([
            self.outcome("interactive", 10, 8),
            self.outcome("best_effort", 10, 8)])
        assert report.jain_fairness == pytest.approx(1.0)

    def test_jain_drops_toward_1_over_n_when_one_class_hogs(self):
        report = self.report_with([
            self.outcome("interactive", 10, 10),
            self.outcome("best_effort", 10, 0)])
        assert report.jain_fairness == pytest.approx(0.5)

    def test_jain_none_without_evidence(self):
        assert self.report_with([]).jain_fairness is None
        report = self.report_with([self.outcome("batch", 0, None)])
        assert report.jain_fairness is None

    def test_jain_one_when_everyone_is_starved(self):
        report = self.report_with([
            self.outcome("interactive", 10, 0),
            self.outcome("best_effort", 10, 0)])
        assert report.jain_fairness == pytest.approx(1.0)

    def test_class_weighted_attainment_weights_by_value(self):
        # interactive (value 8): 1/1 attained; best_effort (value 1):
        # 0/1 attained -> weighted = 8 / 9.
        report = self.report_with([
            self.outcome("interactive", 1, 1),
            self.outcome("best_effort", 1, 0)])
        assert report.class_weighted_attainment == pytest.approx(8 / 9)

    def test_class_weighted_attainment_none_without_evidence(self):
        assert self.report_with([]).class_weighted_attainment is None


class TestScoreSchedulerDeterminism:
    def run_report_json(self, seed=11):
        trace = poisson_trace(40, 30.0, seed=seed, slo_class_mix=MIX)
        report = score_cluster().run(trace)
        return json.dumps(report.to_dict(), sort_keys=True)

    def test_same_seed_runs_are_byte_identical(self):
        assert self.run_report_json() == self.run_report_json()

    def test_classless_trace_keeps_report_shape(self):
        trace = poisson_trace(20, 20.0, seed=2)
        payload = score_cluster().run(trace).to_dict()
        assert "slo_classes" not in payload
        assert "fairness" not in payload


@pytest.mark.parametrize("seed", range(100))
def test_score_stack_invariants_across_seeds(seed):
    """100-seed sweep: under the score stack every request reaches a
    terminal state (conservation — completed + rejected == submitted)
    and nothing starves (no request left queued or running at run end),
    whatever the seed-drawn class mix looks like."""
    trace = poisson_trace(12, 40.0, seed=seed, slo_class_mix=MIX,
                          input_choices=(16, 32, 64),
                          output_choices=(8, 16))
    report = score_cluster().run(trace)
    assert report.completed + report.rejected == report.num_requests
    per_class = sum(o.completed + o.rejected for o in report.class_outcomes)
    assert per_class == report.num_requests
    for outcome in report.class_outcomes:
        # No starvation: every submitted request of every class reached
        # a terminal state.
        assert outcome.completed + outcome.rejected == outcome.submitted
