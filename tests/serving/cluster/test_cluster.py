"""Integration tests for the cluster orchestration loop."""

import json

import pytest

from repro.models.config import GPT2
from repro.serving import KVCacheConfig, ServingEngine
from repro.serving.cluster import (
    AutoscalerConfig,
    ReplicaState,
    ServingCluster,
)
from repro.serving.workload_gen import (
    flash_crowd_trace,
    poisson_trace,
    shared_prefix_trace,
)


class TestConstruction:
    def test_initial_replicas_validated(self):
        with pytest.raises(ValueError, match="initial_replicas"):
            ServingCluster(GPT2, initial_replicas=0)

    def test_initial_size_must_fit_autoscaler_bounds(self):
        with pytest.raises(ValueError, match="outside the autoscaler"):
            ServingCluster(GPT2, initial_replicas=8,
                           autoscaler=AutoscalerConfig(max_replicas=4))

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            ServingCluster(GPT2, router="sticky")


class TestFixedFleet:
    def test_single_replica_matches_single_device_engine_decisions(self):
        """A 1-replica cluster reproduces ServingEngine(num_devices=1)
        decision-for-decision: identical per-request timing, identical
        device stats.  Only the queue-depth *sampling* may differ (the
        engine counts arrivals that are still queued at the front door,
        the cluster dispatches them after the covering step)."""
        trace = poisson_trace(32, 20.0, seed=1)
        engine_dict = ServingEngine(GPT2, num_devices=1).run(trace).to_dict()
        cluster = ServingCluster(GPT2, initial_replicas=1).run(trace)
        replica_dict = cluster.replica_reports[0].to_dict()
        for payload in (engine_dict, replica_dict):
            payload.pop("mean_queue_depth")
            payload.pop("peak_queue_depth")
            # Top-level engine runs embed a run manifest; replica
            # sub-reports deliberately do not (the cluster report carries
            # the fleet's).
            payload.pop("manifest", None)
        assert json.dumps(engine_dict, sort_keys=True) \
            == json.dumps(replica_dict, sort_keys=True)

    def test_two_replicas_increase_fleet_throughput(self):
        trace = poisson_trace(32, 40.0, seed=0)
        one = ServingCluster(GPT2, initial_replicas=1).run(trace)
        two = ServingCluster(GPT2, initial_replicas=2).run(trace)
        assert one.completed == two.completed == 32
        assert two.fleet_tokens_per_s > 1.5 * one.fleet_tokens_per_s

    def test_all_replicas_carry_traffic_under_round_robin(self):
        trace = poisson_trace(24, 40.0, seed=0)
        report = ServingCluster(GPT2, initial_replicas=3,
                                router="round_robin").run(trace)
        assert [r.completed for r in report.replica_reports] == [8, 8, 8]

    def test_least_queue_balances_heterogeneous_lengths(self):
        trace = poisson_trace(32, 40.0, seed=2)
        report = ServingCluster(GPT2, initial_replicas=2,
                                router="least_queue").run(trace)
        assert report.completed == 32
        assert all(r.completed > 0 for r in report.replica_reports)

    def test_fixed_fleet_has_no_lifecycle_churn(self):
        trace = poisson_trace(16, 20.0, seed=0)
        report = ServingCluster(GPT2, initial_replicas=2).run(trace)
        assert not report.autoscaled
        assert report.peak_replicas == 2
        assert all(life.stopped_s is None for life in report.lifecycles)
        assert report.replica_seconds > 0


class TestDeterminism:
    def test_rerun_byte_identical(self):
        trace = poisson_trace(24, 30.0, seed=3)
        first = ServingCluster(GPT2, initial_replicas=2,
                               router="least_queue").run(trace)
        second = ServingCluster(GPT2, initial_replicas=2,
                                router="least_queue").run(trace)
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)

    def test_autoscaled_rerun_byte_identical(self):
        trace = flash_crowd_trace(40, 4.0, 60.0, burst_start_s=1.0,
                                  burst_duration_s=1.0, seed=0)
        def run():
            cluster = ServingCluster(
                GPT2, initial_replicas=1, router="least_queue",
                autoscaler=AutoscalerConfig(max_replicas=4,
                                            slo_ttft_s=0.5,
                                            warmup_s=0.2))
            return cluster.run(trace)
        assert json.dumps(run().to_dict(), sort_keys=True) \
            == json.dumps(run().to_dict(), sort_keys=True)

    def test_same_cluster_rerun_identical(self):
        """run() rebuilds the fleet AND resets router state.  The request
        count is odd on purpose: a leaked round-robin counter would start
        run two on the other replica (13 % 2 == 1) and shift every
        dispatch."""
        trace = poisson_trace(13, 20.0, seed=5)
        cluster = ServingCluster(GPT2, initial_replicas=2)
        assert json.dumps(cluster.run(trace).to_dict()) \
            == json.dumps(cluster.run(trace).to_dict())

    def test_prefix_affinity_pins_reset_between_runs(self):
        trace = shared_prefix_trace(9, prefix_len=64, unique_len=16,
                                    output_len=16, interval_s=0.05,
                                    num_groups=3)
        kv = KVCacheConfig.from_capacity_mb(256.0, enable_prefix_cache=True)
        cluster = ServingCluster(GPT2, initial_replicas=2,
                                 router="prefix_affinity", kv_config=kv)
        assert json.dumps(cluster.run(trace).to_dict(), sort_keys=True) \
            == json.dumps(cluster.run(trace).to_dict(), sort_keys=True)

    def test_same_autoscaled_cluster_rerun_identical(self):
        """The autoscaler's cooldown clock and audit trail must reset per
        run, or a reused cluster's second run would never scale (the last
        action of run one sits 'in the future' of run two's clock)."""
        trace = poisson_trace(40, 30.0, seed=0)
        cluster = ServingCluster(
            GPT2, initial_replicas=1, router="least_queue",
            autoscaler=AutoscalerConfig(max_replicas=4, warmup_s=0.2,
                                        control_interval_s=0.2,
                                        cooldown_s=0.2))
        first = cluster.run(trace)
        second = cluster.run(trace)
        assert first.peak_replicas > 1
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)


class TestPrefixAffinityRouting:
    def kv(self):
        return KVCacheConfig.from_capacity_mb(256.0,
                                              enable_prefix_cache=True)

    def run(self, router):
        trace = shared_prefix_trace(18, prefix_len=96, unique_len=16,
                                    output_len=16, interval_s=0.05,
                                    num_groups=3)
        cluster = ServingCluster(GPT2, initial_replicas=2, router=router,
                                 kv_config=self.kv())
        return cluster.run(trace)

    def test_affinity_raises_prefix_hit_rate_over_round_robin(self):
        affinity = self.run("prefix_affinity")
        scattered = self.run("round_robin")
        assert affinity.completed == scattered.completed == 18
        assert affinity.prefix_hit_rate > scattered.prefix_hit_rate
        # Pinning a group to one replica means its shared prefix is
        # prefilled once per group, not once per (group, replica) pair.
        affinity_created = sum(r.shared_kv_blocks_created
                               for r in affinity.replica_reports)
        scattered_created = sum(r.shared_kv_blocks_created
                                for r in scattered.replica_reports)
        assert affinity_created < scattered_created

    def test_groups_spread_across_replicas(self):
        report = self.run("prefix_affinity")
        assert all(r.completed > 0 for r in report.replica_reports)


class TestAutoscaling:
    def heavy_trace(self):
        return poisson_trace(60, 25.0, seed=0)

    def autoscaler(self, **kwargs):
        defaults = dict(min_replicas=1, max_replicas=4, slo_ttft_s=1.0,
                        control_interval_s=0.2, cooldown_s=0.2,
                        warmup_s=0.2)
        defaults.update(kwargs)
        return AutoscalerConfig(**defaults)

    def test_scales_up_under_pressure(self):
        report = ServingCluster(GPT2, initial_replicas=1,
                                router="least_queue",
                                autoscaler=self.autoscaler()
                                ).run(self.heavy_trace())
        assert report.autoscaled
        assert report.peak_replicas > 1
        assert report.completed == 60
        provisioned = [s.provisioned for s in report.timeline]
        assert max(provisioned) > provisioned[0]

    def test_autoscaled_beats_fixed_single_replica_latency(self):
        trace = self.heavy_trace()
        fixed = ServingCluster(GPT2, initial_replicas=1).run(trace)
        scaled = ServingCluster(GPT2, initial_replicas=1,
                                router="least_queue",
                                autoscaler=self.autoscaler()).run(trace)
        assert scaled.ttft.p95 < fixed.ttft.p95
        assert scaled.fleet_tokens_per_s > fixed.fleet_tokens_per_s

    def burst_with_tail(self):
        """A flash crowd followed by a long light tail, so the fleet has
        both a reason to grow and room to drain back down."""
        return flash_crowd_trace(90, 2.0, 50.0, burst_start_s=1.0,
                                 burst_duration_s=1.0, seed=0)

    def test_drains_back_down_after_burst(self):
        report = ServingCluster(GPT2, initial_replicas=1,
                                router="least_queue",
                                autoscaler=self.autoscaler()
                                ).run(self.burst_with_tail())
        assert report.completed == 90
        assert report.peak_replicas > 1
        assert any(life.stopped_s is not None for life in report.lifecycles)

    def test_drained_replicas_finish_their_work(self):
        cluster = ServingCluster(GPT2, initial_replicas=1,
                                 router="least_queue",
                                 autoscaler=self.autoscaler())
        report = cluster.run(self.burst_with_tail())
        assert report.completed == report.num_requests
        stopped = [replica for replica in cluster.replicas
                   if replica.state is ReplicaState.STOPPED]
        assert stopped, "burst capacity should have drained away"
        for replica in cluster.replicas:
            assert not replica.has_work
        for replica in stopped:
            assert replica.worker.manager is None

    def test_replica_seconds_cheaper_than_peak_everywhere(self):
        """Autoscaling's point: peak capacity only while it is needed."""
        trace = self.burst_with_tail()
        scaled = ServingCluster(GPT2, initial_replicas=1,
                                router="least_queue",
                                autoscaler=self.autoscaler()).run(trace)
        fixed = ServingCluster(GPT2,
                               initial_replicas=scaled.peak_replicas
                               ).run(trace)
        assert scaled.replica_seconds < fixed.replica_seconds

    def test_unused_warmup_does_not_inflate_replica_seconds(self):
        """A replica spawned near the end of the trace with a long warm-up
        never activates; its future ready_s clock must not drag end_s (and
        with it every replica's replica-seconds) past the last real
        activity."""
        trace = poisson_trace(20, 50.0, seed=0)
        report = ServingCluster(
            GPT2, initial_replicas=1, router="least_queue",
            autoscaler=self.autoscaler(max_replicas=2, warmup_s=100.0,
                                       control_interval_s=0.1,
                                       cooldown_s=0.1)).run(trace)
        assert report.completed == 20
        assert len(report.lifecycles) == 2, "regime check: spawn expected"
        assert report.lifecycles[1].stopped_s is None
        # The stillborn replica's ready_s (~100s) must not leak into end_s.
        assert report.end_s < 50.0
        assert report.replica_seconds < 2 * report.end_s

    def test_slo_attainment_reported(self):
        report = ServingCluster(GPT2, initial_replicas=2,
                                router="least_queue",
                                autoscaler=self.autoscaler(slo_ttft_s=2.0)
                                ).run(poisson_trace(20, 10.0, seed=0))
        assert report.slo_ttft_s == 2.0
        assert report.slo_attainment is not None
        assert 0.0 <= report.slo_attainment <= 1.0
        payload = report.to_dict()
        assert payload["slo"]["attained"] == report.slo_attained

    def test_no_slo_means_no_attainment_section(self):
        report = ServingCluster(GPT2, initial_replicas=1).run(
            poisson_trace(4, 10.0, seed=0))
        assert report.slo_attainment is None
        assert "slo" not in report.to_dict()


class TestEmptyTraces:
    def test_engine_empty_trace(self):
        report = ServingEngine(GPT2, num_devices=2).run([])
        assert report.completed == 0
        assert report.num_requests == 0
        assert report.makespan_s == 0.0
        assert report.ttft.is_empty

    def test_cluster_empty_trace(self):
        report = ServingCluster(GPT2, initial_replicas=2).run([])
        assert report.completed == 0
        assert report.fleet_tokens_per_s == 0.0
        assert report.ttft.is_empty
        assert report.peak_replicas == 2

    def test_autoscaled_cluster_empty_trace(self):
        report = ServingCluster(GPT2, initial_replicas=1,
                                autoscaler=AutoscalerConfig()
                                ).run([])
        assert report.completed == 0
        assert report.slo_attainment is None  # no SLO configured

    def test_empty_trace_report_formats(self):
        report = ServingCluster(GPT2, initial_replicas=1).run([])
        assert "0/0 completed" in report.format()
        json.dumps(report.to_dict())


class TestReport:
    def test_to_dict_round_trips_through_json(self):
        trace = poisson_trace(12, 20.0, seed=0)
        report = ServingCluster(GPT2, initial_replicas=2).run(trace)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["completed"] == 12
        assert payload["fleet_tokens_per_s"] > 0
        assert len(payload["replicas"]) == 2
        assert payload["replica_count_timeline"][0]["active"] == 2

    def test_timeline_is_sorted(self):
        trace = flash_crowd_trace(40, 4.0, 50.0, burst_start_s=1.0,
                                  burst_duration_s=1.0, seed=0)
        report = ServingCluster(
            GPT2, initial_replicas=1, router="least_queue",
            autoscaler=AutoscalerConfig(max_replicas=3, warmup_s=0.2,
                                        control_interval_s=0.2,
                                        cooldown_s=0.2)).run(trace)
        times = [s.time_s for s in report.timeline]
        assert times == sorted(times)
