"""End-to-end tracing invariants over the differential matrix.

Three properties make the telemetry layer trustworthy, and each is
asserted here across every configuration of the kernel-differential
matrix (``test_kernel_differential.CONFIGS``):

* **Zero cost when absent** — a run with no tracer and a run with one
  produce the *same* ``ClusterReport`` JSON byte-for-byte once the gated
  ``telemetry`` section is removed.  Tracing is purely observational.

* **Kernel independence** — the event kernel and the step loop emit the
  *identical span multiset* (compared as sorted row tuples) and the
  identical traced report, telemetry section included.  Observability
  must not become a second source of kernel divergence.

* **Exact attribution** — for every request, the :data:`LATENCY_KINDS`
  span durations tile ``[arrival, finish]``: their ``fsum`` reproduces
  the measured e2e latency to float tolerance, and the per-request e2e
  values recovered from spans reproduce the report's latency
  distribution.  This is what makes ``repro trace critical-path`` an
  attribution rather than an estimate.
"""

import json
import math

import pytest

from repro.models.config import GPT2
from repro.serving import ServingEngine, Tracer
from repro.serving.cluster import Event, ServingCluster
from repro.serving.telemetry import SpanKind, timelines_from_tracer
from repro.serving.workload_gen import poisson_trace

from tests.serving.cluster.test_kernel_differential import CONFIGS

TOLERANCE_S = 1e-9


def run_traced(kernel, kwargs, trace):
    tracer = Tracer()
    cluster = ServingCluster(GPT2, kernel=kernel, tracer=tracer, **kwargs)
    return cluster, cluster.run(trace), tracer


def payload_without_telemetry(report):
    payload = report.to_dict()
    payload.pop("telemetry")
    return payload


class TestTracingInvariants:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_tracing_is_free_kernel_independent_and_exact(self, name):
        kwargs, trace = CONFIGS[name]
        untraced = ServingCluster(GPT2, kernel="event", **kwargs)
        untraced_payload = untraced.run(trace).to_dict()
        _, event_report, event_tracer = run_traced("event", kwargs, trace)
        _, step_report, step_tracer = run_traced("step", kwargs, trace)

        # 1. Tracing changes nothing the untraced run reported.
        assert json.dumps(payload_without_telemetry(event_report),
                          sort_keys=True) \
            == json.dumps(untraced_payload, sort_keys=True)

        # 2. Both kernels record the identical span multiset and the
        #    identical traced report (telemetry section included).
        assert event_tracer.sorted_tuples() == step_tracer.sorted_tuples()
        assert json.dumps(event_report.to_dict(), sort_keys=True) \
            == json.dumps(step_report.to_dict(), sort_keys=True)

        # 3. Per-request latency spans tile [arrival, finish] exactly,
        #    and the span-derived e2e distribution reproduces the
        #    report's (count exact, moments to float tolerance).
        timelines = timelines_from_tracer(event_tracer)
        assert len(timelines) == event_report.completed
        for timeline in timelines:
            tiled = math.fsum(end - start
                              for _, start, end, _ in timeline.spans)
            assert abs(tiled - timeline.e2e_s) <= TOLERANCE_S, \
                f"request {timeline.request_id}: spans sum to {tiled}, " \
                f"lifetime is {timeline.e2e_s}"
        e2e = event_report.to_dict()["e2e_latency_ms"]
        values = [t.e2e_s * 1e3 for t in timelines]
        assert e2e["count"] == len(values)
        assert e2e["mean"] == pytest.approx(
            sum(values) / len(values), abs=1e-6)
        assert e2e["max"] == pytest.approx(max(values), abs=1e-6)

    def test_traced_report_carries_telemetry_section(self):
        kwargs, trace = CONFIGS["fixed_least_queue"]
        _, report, tracer = run_traced("event", kwargs, trace)
        section = report.to_dict()["telemetry"]
        assert section["spans"] == tracer.span_counts()
        assert {"QUEUE", "ADMIT", "PREFILL_CHUNK", "DECODE",
                "FIRST_TOKEN"} <= set(section["spans"])
        counters = section["metrics"]["counters"]
        assert {"kv_migrations", "kv_bytes_transferred",
                "kv_stall_seconds", "preemptions"} <= set(counters)
        gauges = section["metrics"]["gauges"]
        assert {"queue_depth", "value_load", "active_replicas",
                "migrations_in_flight"} <= set(gauges)
        assert gauges["queue_depth"]["samples"] > 0

    def test_transfer_spans_cover_migrated_requests(self):
        """Every migration records a fleet-lane KV_TRANSFER span whose
        aux is the payload bytes; streamed configs add per-chunk wire
        spans."""
        kwargs, trace = CONFIGS["disagg_streamed_kv"]
        cluster, report, tracer = run_traced("event", kwargs, trace)
        counts = tracer.span_counts()
        assert counts["KV_TRANSFER"] == report.kv_migrations
        assert counts["STREAM_CHUNK"] == cluster.kv_chunks_landed
        transfer_bytes = sum(
            row[5] for row in tracer.rows()
            if int(row[0]) == SpanKind.KV_TRANSFER)
        assert transfer_bytes == pytest.approx(
            report.kv_bytes_transferred)

    def test_stall_spans_on_slow_streams(self):
        kwargs, trace = CONFIGS["disagg_streamed_stalling"]
        _, report, tracer = run_traced("event", kwargs, trace)
        assert tracer.span_counts().get("KV_STALL", 0) >= \
            report.kv_stall_steps

    def test_preempt_resume_markers_match_report(self):
        kwargs, trace = CONFIGS["kv_pressure_preempting"]
        _, report, tracer = run_traced("event", kwargs, trace)
        counts = tracer.span_counts()
        assert counts["PREEMPT"] == report.preemptions
        assert counts["RESUME"] == counts["PREEMPT"]

    def test_drain_spans_on_scaled_down_replicas(self):
        """Every replica the autoscaler drained leaves a DRAIN span on
        its own lane."""
        kwargs, trace = CONFIGS["autoscaled_slo_flash_crowd"]
        cluster, _, tracer = run_traced("event", kwargs, trace)
        drained = [replica for replica in cluster.replicas
                   if replica.drain_s is not None]
        drain_rows = [row for row in tracer.rows()
                      if int(row[0]) == SpanKind.DRAIN]
        assert len(drain_rows) == len(drained) >= 1
        assert {int(row[2]) for row in drain_rows} == \
            {replica.replica_id for replica in drained}

    def test_first_token_instants_bound_ttft(self):
        kwargs, trace = CONFIGS["single_replica"]
        _, report, tracer = run_traced("event", kwargs, trace)
        timelines = timelines_from_tracer(tracer)
        ttfts = sorted(t.ttft_s for t in timelines)
        payload = report.to_dict()["ttft_ms"]
        assert payload["count"] == len(ttfts)
        assert payload["max"] == pytest.approx(ttfts[-1] * 1e3, abs=1e-6)


class TestManifest:
    def test_manifest_is_kernel_independent_and_descriptive(self):
        kwargs, trace = CONFIGS["disagg_autoscaled"]
        _, event_report, _ = run_traced("event", kwargs, trace)
        _, step_report, _ = run_traced("step", kwargs, trace)
        manifest = event_report.manifest
        assert manifest == step_report.manifest
        assert manifest["component"] == "cluster"
        assert manifest["model"] == GPT2.name
        assert "kernel" not in manifest  # implementation detail
        assert manifest["workload"]["num_requests"] == len(trace)
        assert manifest["disaggregation"]["prefill_replicas"] == 2
        assert manifest["autoscaler"]["slo_tpot_s"] == 0.05
        json.dumps(manifest)

    def test_manifest_present_without_a_tracer(self):
        kwargs, trace = CONFIGS["single_replica"]
        report = ServingCluster(GPT2, kernel="event", **kwargs).run(trace)
        assert report.manifest["component"] == "cluster"

    def test_manifest_extra_lands_verbatim(self):
        kwargs, trace = CONFIGS["single_replica"]
        cluster = ServingCluster(GPT2, kernel="event", **kwargs)
        report = cluster.run(trace, manifest_extra={"seed": 42})
        assert report.manifest["seed"] == 42

    def test_engine_manifest_and_gated_telemetry(self):
        trace = poisson_trace(24, 12.0, seed=0)
        untraced = ServingEngine(GPT2, num_devices=2).run(trace)
        assert untraced.manifest["component"] == "engine"
        assert "telemetry" not in untraced.to_dict()

        tracer = Tracer()
        traced = ServingEngine(GPT2, num_devices=2, tracer=tracer) \
            .run(trace)
        payload = traced.to_dict()
        assert payload["telemetry"]["spans"] == tracer.span_counts()
        payload.pop("telemetry")
        assert json.dumps(payload, sort_keys=True) \
            == json.dumps(untraced.to_dict(), sort_keys=True)
        timelines = timelines_from_tracer(tracer)
        assert len(timelines) == traced.completed
        for timeline in timelines:
            tiled = math.fsum(end - start
                              for _, start, end, _ in timeline.spans)
            assert abs(tiled - timeline.e2e_s) <= TOLERANCE_S


class TestRecordEventsView:
    """``record_events`` survives as a thin view over the tracer's
    kernel log — the one event-materialization path."""

    def test_event_log_without_user_tracer(self):
        kwargs, trace = CONFIGS["single_replica"]
        cluster = ServingCluster(GPT2, kernel="event", **kwargs)
        assert cluster.last_event_log is None
        cluster.record_events = True
        cluster.run(trace)
        log = cluster.last_event_log
        assert len(log) == cluster.events_processed
        assert all(isinstance(event, Event) for event in log)
        # Popped order is the kernel's delivery order.
        assert [e.time_s for e in log] == sorted(e.time_s for e in log)

    def test_event_log_lands_on_user_tracer(self):
        kwargs, trace = CONFIGS["single_replica"]
        tracer = Tracer()
        cluster = ServingCluster(GPT2, kernel="event", tracer=tracer,
                                 **kwargs)
        cluster.record_events = True
        cluster.run(trace)
        assert tracer.kernel_log_enabled
        assert cluster.last_event_log == tracer.kernel_events()

    def test_step_kernel_records_no_events(self):
        kwargs, trace = CONFIGS["single_replica"]
        cluster = ServingCluster(GPT2, kernel="step", **kwargs)
        cluster.record_events = True
        cluster.run(trace)
        assert cluster.last_event_log is None
