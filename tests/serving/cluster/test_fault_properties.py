"""Property-test layer over random fault plans.

The differential suite pins a handful of hand-written fault scenarios;
this sweep drives **200 seeded random plans** (:meth:`FaultPlan.random`)
through the cluster and asserts the invariants that must hold for *any*
plan — the properties that define crash-recovery correctness rather
than reproduce one trace:

* **conservation** — every request is accounted for exactly once:
  ``completed + rejected + failed == num_requests``.  A crash may lose
  in-flight work, but never a request.
* **crash causality** — a dead replica does no work: no span starts on
  a replica's tracer lane after that replica's crash instant, and no
  request completion lands there.
* **retry causality** — recovery follows failure: every RETRY dispatch
  instant is at (or after) the earliest crash instant; an unfaulted
  plan produces no retries at all.

Each seed also varies the fleet shape (every third seed autoscales, so
the spawn-with-warmup replacement path stays inside the sweep) while
the workload stays fixed — the plan is the random variable under test.
"""

import pytest

from repro.models.config import GPT2
from repro.serving import Tracer
from repro.serving.cluster import AutoscalerConfig, FaultPlan, ServingCluster
from repro.serving.telemetry.tracer import SpanKind
from repro.serving.workload_gen import poisson_trace

NUM_SEEDS = 200
NUM_REQUESTS = 24


def run_faulted(seed: int):
    """One sweep sample: a fixed workload under a seeded random plan."""
    plan = FaultPlan.random(seed, num_replicas=3, horizon_s=2.0)
    autoscaler = None
    if seed % 3 == 0:
        autoscaler = AutoscalerConfig(min_replicas=2, max_replicas=4,
                                      warmup_s=0.1)
    tracer = Tracer()
    cluster = ServingCluster(GPT2, initial_replicas=3,
                             router="least_queue",
                             autoscaler=autoscaler,
                             fault_plan=plan, tracer=tracer)
    report = cluster.run(poisson_trace(NUM_REQUESTS, 20.0, seed=7))
    return plan, cluster, report, tracer


def crash_instants(tracer):
    """lane -> crash time, from the CRASH instants the run emitted."""
    crashes = {}
    for row in tracer.rows():
        if int(row[0]) == int(SpanKind.CRASH):
            crashes[int(row[2])] = float(row[3])
    return crashes


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_random_plan_invariants(seed):
    plan, cluster, report, tracer = run_faulted(seed)

    # Conservation: nothing vanishes, nothing is double-counted.
    assert report.completed + report.rejected + report.failed \
        == NUM_REQUESTS, f"seed {seed}: conservation violated"

    crashes = crash_instants(tracer)
    # Every recorded crash corresponds to a plan crash that could fire.
    assert len(crashes) <= plan.num_crashes

    # Crash causality: no span starts on a crashed lane after its death,
    # and no request is attributed a completion there.
    for row in tracer.rows():
        lane = int(row[2])
        if lane in crashes:
            assert float(row[3]) <= crashes[lane] + 1e-12, (
                f"seed {seed}: span kind {int(row[0])} starts at "
                f"{float(row[3])} on replica {lane} crashed at "
                f"{crashes[lane]}")
    for replica in cluster.replicas:
        if replica.replica_id in crashes:
            assert replica.crashed
            assert replica.state.name == "STOPPED"
            worker = replica.worker
            assert not worker.running and not worker.waiting \
                and not worker.pending
            assert replica.stopped_s == pytest.approx(
                crashes[replica.replica_id])

    # Retry causality: recovery dispatches only after the first death.
    retries = [float(row[3]) for row in tracer.rows()
               if int(row[0]) == int(SpanKind.RETRY)]
    if retries:
        assert crashes, f"seed {seed}: retries without any crash"
        assert min(retries) >= min(crashes.values()) - 1e-12
    if not plan.num_crashes:
        assert not retries
        assert report.failed == 0

    # The gated report section agrees with the sweep's own accounting.
    if plan:
        assert report.faults is not None
        assert report.faults["requests_failed"] == report.failed
        # Every RETRY instant is one dispatch; the report's retry total
        # additionally counts the budget-exhausted (failed) attempts.
        assert len(retries) == cluster.retry_dispatches
        assert report.faults["retries"] >= cluster.retry_dispatches
    else:
        assert report.faults is None


def test_sweep_actually_exercises_recovery():
    """Meta-coverage: across the 200 seeds the sweep must keep hitting
    crashes, retries and at least one autoscaled replacement — a sweep
    of no-op plans would pass every invariant vacuously."""
    crashed_runs = retried_runs = replaced_runs = 0
    for seed in range(0, NUM_SEEDS, 7):
        plan, cluster, report, tracer = run_faulted(seed)
        crashes = crash_instants(tracer)
        if crashes:
            crashed_runs += 1
        if cluster.retry_dispatches:
            retried_runs += 1
        if crashes and any(life.spawned_s > min(crashes.values())
                           for life in report.lifecycles):
            replaced_runs += 1
    assert crashed_runs >= 10
    assert retried_runs >= 5
    assert replaced_runs >= 1
