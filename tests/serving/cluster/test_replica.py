"""Tests for the EngineReplica lifecycle wrapper."""

import pytest

from repro.models.config import GPT2
from repro.serving import ServingRequest
from repro.serving.cluster import EngineReplica, ReplicaState
from repro.serving.workload_gen import trace_from_specs


def make_request(request_id=0, arrival_s=0.0, label="[16:8]"):
    timed = trace_from_specs([(arrival_s, label)])[0]
    return ServingRequest(request_id, timed.workload, arrival_s)


class TestLifecycle:
    def test_initial_fleet_replica_is_active_immediately(self):
        replica = EngineReplica(0, GPT2, warmup_s=0.0)
        assert replica.state is ReplicaState.ACTIVE
        assert replica.routable
        assert replica.ready_s == 0.0

    def test_scaled_up_replica_warms_before_serving(self):
        replica = EngineReplica(1, GPT2, spawned_s=2.0, warmup_s=1.5)
        assert replica.state is ReplicaState.WARMING
        assert not replica.routable
        assert replica.ready_s == 3.5
        assert not replica.activate_if_ready(3.0)
        assert replica.activate_if_ready(3.5)
        assert replica.state is ReplicaState.ACTIVE

    def test_default_warmup_is_parameter_packing_time(self):
        replica = EngineReplica(0, GPT2, spawned_s=1.0, warmup_s=None)
        assert replica.warmup_s == pytest.approx(replica.worker.packing_s)
        assert replica.ready_s == pytest.approx(1.0 + replica.worker.packing_s)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            EngineReplica(0, GPT2, warmup_s=-1.0)

    def test_clock_starts_at_readiness(self):
        replica = EngineReplica(0, GPT2, spawned_s=4.0, warmup_s=2.0)
        assert replica.worker.clock == pytest.approx(6.0)

    def test_warming_replica_rejects_submissions(self):
        replica = EngineReplica(0, GPT2, warmup_s=5.0)
        with pytest.raises(RuntimeError, match="warming"):
            replica.submit(make_request())


class TestDrain:
    def test_drain_finishes_submitted_work_then_stops(self):
        replica = EngineReplica(0, GPT2, warmup_s=0.0)
        replica.submit(make_request())
        replica.drain(0.0)
        assert replica.state is ReplicaState.DRAINING
        with pytest.raises(RuntimeError, match="draining"):
            replica.submit(make_request(1))
        while replica.step():
            pass
        assert replica.state is ReplicaState.STOPPED
        assert replica.stopped_s == replica.worker.clock
        report = replica.report("gpt2")
        assert report.completed == 1

    def test_drain_of_idle_replica_stops_immediately(self):
        replica = EngineReplica(0, GPT2, warmup_s=0.0)
        replica.drain(3.0)
        assert replica.state is ReplicaState.STOPPED
        assert replica.stopped_s == 3.0

    def test_stop_releases_kv_but_keeps_report_counters(self):
        from repro.serving import KVCacheConfig

        kv = KVCacheConfig.from_capacity_mb(64.0)
        replica = EngineReplica(0, GPT2, kv_config=kv, warmup_s=0.0)
        replica.submit(make_request())
        replica.drain(0.0)
        while replica.step():
            pass
        assert replica.worker.manager is None
        stats = replica.worker.device_stats()
        assert stats.kv_blocks_total > 0
        assert stats.kv_peak_blocks > 0

    def test_release_kv_refuses_while_work_in_flight(self):
        from repro.serving import KVCacheConfig

        kv = KVCacheConfig.from_capacity_mb(64.0)
        replica = EngineReplica(0, GPT2, kv_config=kv, warmup_s=0.0)
        replica.submit(make_request())
        replica.step()
        with pytest.raises(RuntimeError, match="drain it dry"):
            replica.worker.release_kv()
        # The pool survived the refused release; the batch keeps running.
        assert replica.worker.manager is not None
        while replica.step():
            pass

    def test_drain_is_idempotent(self):
        replica = EngineReplica(0, GPT2, warmup_s=0.0)
        replica.drain(1.0)
        replica.drain(2.0)
        assert replica.stopped_s == 1.0


class TestLoadSignals:
    def test_queue_and_running_counts(self):
        replica = EngineReplica(0, GPT2, warmup_s=0.0)
        replica.submit(make_request(0))
        replica.submit(make_request(1))
        assert replica.queue_depth == 2
        assert replica.num_running == 0
        assert replica.in_system == 2
        replica.step()
        assert replica.in_system == 2  # admitted into the batch, still here

    def test_report_completes_all_requests(self):
        replica = EngineReplica(0, GPT2, warmup_s=0.0)
        for i in range(3):
            replica.submit(make_request(i, arrival_s=0.05 * i))
        while replica.step():
            pass
        report = replica.report("gpt2")
        assert report.completed == 3
        assert report.num_devices == 1
        assert report.devices[0].device_id == 0
