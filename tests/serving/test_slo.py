"""Tests for SLO classes and the score-based global scheduler.

Covers the class registry and class-mix parsing, the score function's
algebra (value density, urgency, aging), the score policy trio
(admission / preemption / placement), and — the headline bugfix — the
starvation regression: under ``priority`` admission a low-tier request's
wait grows with the length of a saturating high-tier stream (unbounded
in the trace size), while under ``score`` admission the aging term
bounds it regardless of how long the stream runs.
"""

import pytest

from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.serving import SchedulerConfig, ServingEngine
from repro.serving.policies import (
    LowestScoreFirstPreemption,
    ScoreAdmission,
    ScorePlacement,
)
from repro.serving.policies.placement import DeviceLoad
from repro.serving.request import ServingRequest
from repro.serving.slo import (
    DEFAULT_AGING_RATE,
    DEFAULT_SLO_CLASS,
    SLO_CLASSES,
    SLOClass,
    parse_class_mix,
    request_score,
    request_value,
    resolve_slo_class,
)
from repro.serving.workload_gen import TimedRequest, poisson_trace


def classed_request(request_id, slo_class, arrival_s=0.0,
                    workload=Workload(64, 36)):
    return ServingRequest(request_id, workload, arrival_s,
                          slo_class=resolve_slo_class(slo_class))


class TestRegistry:
    def test_four_classes_with_distinct_tiers(self):
        assert sorted(SLO_CLASSES) == ["batch", "best_effort",
                                       "interactive", "standard"]
        tiers = [cls.tier for cls in SLO_CLASSES.values()]
        assert len(set(tiers)) == 4

    def test_targets_tighten_and_values_grow_with_tier(self):
        ordered = sorted(SLO_CLASSES.values(), key=lambda c: c.tier)
        for looser, tighter in zip(ordered, ordered[1:]):
            assert tighter.ttft_target_s < looser.ttft_target_s
            assert tighter.tpot_target_s < looser.tpot_target_s
            assert tighter.value > looser.value

    def test_default_class_is_standard(self):
        assert DEFAULT_SLO_CLASS is SLO_CLASSES["standard"]

    def test_resolve_accepts_name_instance_none_and_dashes(self):
        assert resolve_slo_class("interactive") \
            is SLO_CLASSES["interactive"]
        assert resolve_slo_class("best-effort") \
            is SLO_CLASSES["best_effort"]
        instance = SLO_CLASSES["batch"]
        assert resolve_slo_class(instance) is instance
        assert resolve_slo_class(None) is None

    def test_resolve_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO class"):
            resolve_slo_class("platinum")

    def test_class_validation(self):
        with pytest.raises(ValueError, match="ttft_target_s"):
            SLOClass("bad", ttft_target_s=0.0, tpot_target_s=1.0,
                     value=1.0, tier=0)
        with pytest.raises(ValueError, match="value"):
            SLOClass("bad", ttft_target_s=1.0, tpot_target_s=1.0,
                     value=0.0, tier=0)
        with pytest.raises(ValueError, match="tpot_target_s"):
            SLOClass("bad", ttft_target_s=1.0, tpot_target_s=-1.0,
                     value=1.0, tier=0)


class TestParseClassMix:
    def test_string_mapping_and_pairs_agree(self):
        from_string = parse_class_mix("interactive=1, batch=3")
        from_mapping = parse_class_mix({"interactive": 1.0, "batch": 3.0})
        from_pairs = parse_class_mix([("batch", 3.0), ("interactive", 1.0)])
        assert from_string == from_mapping == from_pairs
        assert from_string == [("interactive", 0.25), ("batch", 0.75)]

    def test_ordered_by_tier_and_normalised(self):
        mix = parse_class_mix("best_effort=1,interactive=1,standard=2")
        assert [name for name, _ in mix] \
            == ["interactive", "standard", "best_effort"]
        assert sum(p for _, p in mix) == pytest.approx(1.0)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="not name=weight"):
            parse_class_mix("interactive")
        with pytest.raises(ValueError, match="not a number"):
            parse_class_mix("interactive=lots")
        with pytest.raises(ValueError, match="must be positive"):
            parse_class_mix("interactive=0")
        with pytest.raises(ValueError, match="listed twice"):
            parse_class_mix("batch=1,batch=2")
        with pytest.raises(ValueError, match="unknown SLO class"):
            parse_class_mix("gold=1")
        with pytest.raises(ValueError, match="at least one"):
            parse_class_mix("")


class TestRequestScore:
    def test_fresh_score_is_value_density(self):
        request = classed_request(0, "interactive",
                                  workload=Workload(60, 40))
        # 100 total tokens = exactly one cost unit, wait 0 -> urgency 1.
        assert request_score(request, now=0.0) == pytest.approx(8.0)

    def test_unclassed_request_scores_as_standard(self):
        unclassed = ServingRequest(0, Workload(60, 40), 0.0)
        standard = classed_request(1, "standard", workload=Workload(60, 40))
        assert request_score(unclassed, 0.5) \
            == pytest.approx(request_score(standard, 0.5))
        assert request_value(unclassed) == SLO_CLASSES["standard"].value

    def test_score_grows_at_least_linearly_with_wait(self):
        request = classed_request(0, "best_effort")
        base = request_score(request, 0.0)
        for wait in (1.0, 10.0, 100.0):
            assert request_score(request, wait) \
                >= base + DEFAULT_AGING_RATE * wait

    def test_fresh_arrival_score_is_bounded(self):
        """The no-starvation constant: no fresh arrival can outscore
        max_value / min_cost, so any waiter eventually overtakes all of
        them."""
        max_value = max(c.value for c in SLO_CLASSES.values())
        min_cost = 1 / 100.0   # remaining clamps at 1 token
        bound = max_value / min_cost
        for name in SLO_CLASSES:
            fresh = classed_request(0, name, arrival_s=5.0,
                                    workload=Workload(8, 8))
            assert request_score(fresh, now=5.0) <= bound
        waiter = classed_request(1, "best_effort")
        assert request_score(waiter, now=bound / DEFAULT_AGING_RATE + 60) \
            > bound

    def test_remaining_cost_prices_partial_progress(self):
        """A half-decoded request is cheaper to finish than a fresh twin,
        so lowest_score preemption protects started work."""
        fresh = classed_request(0, "standard", workload=Workload(50, 50))
        started = classed_request(1, "standard", workload=Workload(50, 50))
        started.tokens_emitted = 40
        assert request_score(started, 0.0) > request_score(fresh, 0.0)

    def test_wait_clamped_for_future_requests(self):
        request = classed_request(0, "interactive", arrival_s=10.0)
        assert request_score(request, now=0.0) \
            == pytest.approx(request_score(request, now=10.0))


class TestScorePolicies:
    def test_admission_orders_by_score_descending(self):
        now = 2.0
        requests = [classed_request(i, name, arrival_s=0.0)
                    for i, name in enumerate(
                        ["best_effort", "interactive", "standard"])]
        ordered = ScoreAdmission().order(requests, now=now)
        scores = [request_score(r, now) for r in ordered]
        assert scores == sorted(scores, reverse=True)
        assert ordered[0].slo_class.name == "interactive"

    def test_equal_scores_tie_break_on_arrival_then_id(self):
        workload = Workload(64, 36)
        same = [ServingRequest(3, workload, 0.0),
                ServingRequest(1, workload, 0.0),
                ServingRequest(2, workload, 0.0)]
        ordered = ScoreAdmission().order(same, now=1.0)
        assert [r.request_id for r in ordered] == [1, 2, 3]
        later = [ServingRequest(0, workload, 1.0),
                 ServingRequest(9, workload, 0.0)]
        # Same class + same shape: the earlier arrival scores higher (it
        # aged), so arrival order wins before the id tie-break matters.
        assert [r.request_id
                for r in ScoreAdmission().order(later, now=2.0)] == [9, 0]

    def test_admission_rejects_nonpositive_aging(self):
        with pytest.raises(ValueError, match="aging_rate"):
            ScoreAdmission(aging_rate=0.0)
        with pytest.raises(ValueError, match="aging_rate"):
            LowestScoreFirstPreemption(aging_rate=-1.0)

    def test_preemption_evicts_lowest_score(self):
        running = [classed_request(0, "interactive"),
                   classed_request(1, "best_effort"),
                   classed_request(2, "standard")]
        victim = LowestScoreFirstPreemption().select_victim(
            running, None, now=1.0)
        assert victim is running[1]

    def test_preemption_tie_breaks_on_youngest(self):
        workload = Workload(64, 36)
        running = [ServingRequest(0, workload, 0.0),
                   ServingRequest(1, workload, 0.0)]
        victim = LowestScoreFirstPreemption().select_victim(
            running, None, now=1.0)
        assert victim is running[1]

    def test_placement_balances_weighted_tokens(self):
        loads = [DeviceLoad(0), DeviceLoad(1)]
        loads[0].weighted_tokens = 800.0
        loads[1].weighted_tokens = 100.0
        request = classed_request(0, "interactive")
        assert ScorePlacement().select_device(request, loads) == 1

    def test_placement_ties_break_on_queue_then_id(self):
        loads = [DeviceLoad(0), DeviceLoad(1)]
        loads[0].queued_tokens = 50
        assert ScorePlacement().select_device(
            classed_request(0, "batch"), loads) == 1


def saturating_trace(num_stream, stream_interval_s=0.13,
                     workload=Workload(48, 24)):
    """One best-effort victim at t=0 under a saturating interactive
    stream: arrivals (every 0.13 s) mildly outpace single-slot service
    (~0.16 s per request), so the queue always holds an interactive and
    a scheduler that always prefers the high tier never reaches the
    victim until the whole stream drains."""
    victim = TimedRequest(0, workload, 0.0, priority=0,
                          slo_class="best_effort")
    stream = [TimedRequest(i + 1, workload, i * stream_interval_s,
                           priority=3, slo_class="interactive")
              for i in range(num_stream)]
    return [victim] + stream


def victim_wait(admission, num_stream):
    from repro.serving.cluster import ServingCluster

    trace = saturating_trace(num_stream)
    cluster = ServingCluster(
        GPT2, initial_replicas=1,
        scheduler_config=SchedulerConfig(max_batch_size=1,
                                         admission=admission))
    report = cluster.run(trace)
    assert report.completed == len(trace)
    # The victim is the sole best_effort request, so its class's TTFT
    # stats are its TTFT exactly.
    outcome = next(o for o in report.class_outcomes
                   if o.slo_class.name == "best_effort")
    assert outcome.completed == 1
    return outcome.ttft.mean


class TestStarvationRegression:
    """The bug the priority tier papers over: a saturating high-tier
    stream starves low tiers for as long as it keeps arriving.  The
    score scheduler's aging term makes the victim's wait independent of
    the stream length."""

    def test_priority_wait_grows_with_stream_length(self):
        short = victim_wait("priority", 30)
        long = victim_wait("priority", 60)
        # Doubling the stream roughly doubles the victim's wait — the
        # signature of starvation (wait unbounded in the trace length).
        assert long > short * 1.7

    def test_score_aging_bounds_the_wait(self):
        admission = ScoreAdmission(aging_rate=20.0)
        short = victim_wait(admission, 30)
        long = victim_wait(admission, 60)
        # Same doubling, same wait: the victim overtakes fresh
        # interactive arrivals once aging dominates, regardless of how
        # much more stream is coming.
        assert long == pytest.approx(short, rel=0.15)
        assert long < victim_wait("priority", 60)

    def test_priority_docstring_owns_the_caveat(self):
        from repro.serving.policies.admission import PriorityAdmission
        assert "starvation" in PriorityAdmission.__doc__.lower()


class TestScoreSchedulerDeterminism:
    def test_same_seed_reports_are_byte_identical(self):
        import json

        def run():
            trace = poisson_trace(
                50, 30.0, seed=21,
                slo_class_mix="interactive=1,standard=2,best_effort=1")
            engine = ServingEngine(
                GPT2, num_devices=2,
                scheduler_config=SchedulerConfig(admission="score"),
                placement="score", preemption="lowest_score")
            return json.dumps(engine.run(trace).to_dict(), sort_keys=True)

        assert run() == run()
