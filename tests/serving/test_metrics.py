"""Tests for serving metrics and report assembly."""

import pytest

from repro.models.workload import Workload
from repro.serving.metrics import (
    LatencyStats,
    SampleBuffer,
    build_report,
    percentile,
)
from repro.serving.request import RequestState, ServingRequest


class TestPercentile:
    def test_empty_sample_rejected(self):
        """An empty sample has no percentile — a clear error, not a silent
        0.0 that reads like a measured latency."""
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_single_value(self):
        assert percentile([3.0], 99.0) == 3.0
        assert percentile([3.0], 0.0) == 3.0
        assert percentile([3.0], 100.0) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], 101.0)


class TestLatencyStats:
    def test_from_empty_is_explicit_sentinel(self):
        """Zero-request traces produce the count=0 sentinel, distinguishable
        from a genuine all-zero latency distribution."""
        stats = LatencyStats.from_values([])
        assert stats == LatencyStats.empty()
        assert stats.is_empty
        assert stats.count == 0
        assert stats.mean == 0.0 and stats.max == 0.0
        assert stats.format_ms() == "no samples"

    def test_single_sample(self):
        stats = LatencyStats.from_values([0.25])
        assert not stats.is_empty
        assert stats.count == 1
        # Every summary statistic of a singleton is the sample itself.
        assert (stats.mean, stats.p50, stats.p95, stats.p99, stats.max) \
            == (0.25, 0.25, 0.25, 0.25, 0.25)
        assert "250.0" in stats.format_ms()

    def test_ordering_invariant(self):
        stats = LatencyStats.from_values([float(i) for i in range(100)])
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max
        assert stats.mean == pytest.approx(49.5)
        assert stats.count == 100


class TestBuildReport:
    def _finished_request(self, request_id, arrival, first_token, finish,
                          workload=Workload(8, 4)):
        request = ServingRequest(request_id, workload, arrival)
        request.state = RequestState.FINISHED
        request.admitted_s = arrival
        request.first_token_s = first_token
        request.finish_s = finish
        request.tokens_emitted = workload.output_len
        return request

    def test_aggregates(self):
        requests = [
            self._finished_request(0, 0.0, 1.0, 2.0),
            self._finished_request(1, 1.0, 2.0, 4.0),
        ]
        report = build_report("gpt2", 1, requests, [], [])
        assert report.completed == 2
        assert report.total_output_tokens == 8
        assert report.makespan_s == pytest.approx(4.0)
        assert report.aggregate_tokens_per_s == pytest.approx(2.0)
        assert report.ttft.max == pytest.approx(1.0)

    def test_one_token_outputs_excluded_from_tpot(self):
        requests = [
            self._finished_request(0, 0.0, 1.0, 1.0, workload=Workload(8, 1)),
            self._finished_request(1, 0.0, 1.0, 2.0, workload=Workload(8, 3)),
        ]
        report = build_report("gpt2", 1, requests, [], [])
        # Only the 3-token request contributes: (2.0 - 1.0) / 2 decodes.
        assert report.tpot.max == pytest.approx(0.5)
        assert report.tpot.mean == pytest.approx(0.5)

    def test_format_is_printable(self):
        report = build_report("gpt2", 1,
                              [self._finished_request(0, 0.0, 1.0, 2.0)], [], [])
        text = report.format()
        assert "serving report" in text
        assert "tok/s" in text

    def test_to_dict_round_trips_through_json(self):
        import json

        report = build_report("gpt2", 1,
                              [self._finished_request(0, 0.0, 1.0, 2.0)], [], [])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["completed"] == 1
        assert payload["ttft_ms"]["max"] == pytest.approx(1000.0)
        assert payload["ttft_ms"]["count"] == 1
        assert payload["aggregate_tokens_per_s"] == pytest.approx(2.0)
        assert payload["preemptions"] == 0
        assert payload["preemption_events"] == []

    def test_zero_request_trace_yields_sentinel_report(self):
        """An empty trace must format and serialise cleanly, with every
        latency block marked as the no-samples sentinel."""
        import json

        report = build_report("gpt2", 1, [], [], [])
        assert report.completed == 0
        assert report.ttft.is_empty and report.tpot.is_empty
        assert report.e2e_latency.is_empty and report.queue_wait.is_empty
        assert "no samples" in report.format()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ttft_ms"]["count"] == 0
        assert payload["aggregate_tokens_per_s"] == 0.0


class TestSampleBuffer:
    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError, match="column"):
            SampleBuffer(0)
        with pytest.raises(ValueError, match="capacity"):
            SampleBuffer(2, capacity=0)

    def test_appends_past_initial_capacity(self):
        """The buffer doubles transparently: appending far past the seed
        capacity keeps every row, in order."""
        buffer = SampleBuffer(2, capacity=2)
        for i in range(100):
            buffer.append(float(i), float(i) * 10.0)
        assert len(buffer) == 100
        assert buffer.rows().shape == (100, 2)
        assert list(buffer.column(0)) == [float(i) for i in range(100)]
        assert buffer[99] == (99.0, 990.0)

    def test_views_track_filled_rows_only(self):
        """rows()/column() expose exactly the appended rows, never the
        preallocated slack."""
        buffer = SampleBuffer(3, capacity=8)
        buffer.append(1.0, 2.0, 3.0)
        assert buffer.rows().shape == (1, 3)
        assert buffer.column(2).tolist() == [3.0]

    def test_reads_like_a_list_of_tuples(self):
        """The cursor-style readers that predate the buffer (autoscaler
        windows, worker-feed tests) treat it as a list of row tuples."""
        buffer = SampleBuffer(2)
        assert not buffer
        buffer.append(0.5, 1.5)
        buffer.append(2.5, 3.5)
        assert buffer
        assert len(buffer) == 2
        assert list(buffer) == [(0.5, 1.5), (2.5, 3.5)]
        assert buffer[0] == (0.5, 1.5)
        assert buffer[-1] == (2.5, 3.5)
        assert buffer[1:] == [(2.5, 3.5)]

    def test_columns_property(self):
        assert SampleBuffer(4).columns == 4

    def test_slicing_an_empty_buffer(self):
        """Slices of nothing are empty lists, never views of the
        preallocated slack."""
        buffer = SampleBuffer(2, capacity=4)
        assert buffer[:] == []
        assert buffer[0:10] == []
        assert buffer[-3:] == []

    def test_negative_indexing_matches_list_semantics(self):
        buffer = SampleBuffer(1, capacity=2)
        for i in range(3):
            buffer.append(float(i))
        assert buffer[-1] == (2.0,)
        assert buffer[-3] == (0.0,)
        assert buffer[-2:] == [(1.0,), (2.0,)]
        with pytest.raises(IndexError):
            buffer[-4]

    def test_growth_boundary_at_exact_capacity(self):
        """Filling to exactly the seed capacity must not grow the store;
        the next append doubles it and keeps every row."""
        buffer = SampleBuffer(1, capacity=4)
        for i in range(4):
            buffer.append(float(i))
        assert buffer._rows.shape[0] == 4  # still the seed allocation
        buffer.append(4.0)
        assert buffer._rows.shape[0] == 8
        assert list(buffer.column(0)) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_extend_bulk_appends(self):
        buffer = SampleBuffer(2, capacity=2)
        buffer.append(0.0, 1.0)
        buffer.extend([(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)])
        assert list(buffer) == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0),
                                (3.0, 4.0)]

    def test_extend_empty_batch_is_a_noop(self):
        buffer = SampleBuffer(2, capacity=2)
        buffer.extend([])
        assert len(buffer) == 0

    def test_extend_to_exact_capacity_does_not_grow(self):
        buffer = SampleBuffer(1, capacity=4)
        buffer.extend([(0.0,), (1.0,), (2.0,), (3.0,)])
        assert buffer._rows.shape[0] == 4
        assert len(buffer) == 4

    def test_extend_grows_past_multiple_doublings(self):
        buffer = SampleBuffer(1, capacity=2)
        buffer.extend([(float(i),) for i in range(17)])
        assert len(buffer) == 17
        assert buffer._rows.shape[0] == 32
        assert list(buffer.column(0)) == [float(i) for i in range(17)]
