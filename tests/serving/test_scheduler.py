"""Tests for the iteration-level continuous-batching scheduler."""

from collections import deque

import pytest

from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.runtime.session import InferenceSession
from repro.serving.request import ServingRequest
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerConfig


def make_request(request_id: int, workload: Workload,
                 session: InferenceSession = None) -> ServingRequest:
    session = session or InferenceSession(GPT2)
    request = ServingRequest(request_id, workload, arrival_s=0.0)
    request.active = session.start_request(workload)
    return request


def drain_prefill(request: ServingRequest) -> None:
    """Run the request's prefill to completion so it decodes next."""
    while request.active.in_prefill:
        work = request.active.next_work()
        request.active.record(work, 0.0)


class TestConfigValidation:
    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            SchedulerConfig(max_batch_size=0)

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError, match="token_budget"):
            SchedulerConfig(token_budget=0)


class TestStepPlanning:
    def test_running_requests_keep_their_slot(self):
        scheduler = ContinuousBatchingScheduler(SchedulerConfig(max_batch_size=2))
        running = [make_request(0, Workload(8, 8))]
        drain_prefill(running[0])
        waiting = deque([make_request(1, Workload(8, 8)),
                         make_request(2, Workload(8, 8))])
        plan = scheduler.plan_step(running, waiting)
        # The resident decode is scheduled first, one admission fills the
        # remaining slot, the second waiter stays queued.
        assert plan.entries[0][0].request_id == 0
        assert plan.entries[0][1].kind == "decode"
        assert [r.request_id for r in plan.admitted] == [1]
        assert len(waiting) == 1

    def test_max_batch_size_caps_admission(self):
        scheduler = ContinuousBatchingScheduler(SchedulerConfig(max_batch_size=3))
        waiting = deque(make_request(i, Workload(4, 4)) for i in range(6))
        plan = scheduler.plan_step([], waiting)
        assert len(plan.admitted) == 3
        assert len(waiting) == 3

    def test_token_budget_respected(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, token_budget=100))
        waiting = deque(make_request(i, Workload(64, 8)) for i in range(4))
        plan = scheduler.plan_step([], waiting)
        assert plan.scheduled_tokens <= 100

    def test_chunked_prefill_splits_long_prompt(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=32, chunked_prefill=True))
        request = make_request(0, Workload(100, 4))
        waiting = deque([request])
        plan = scheduler.plan_step([], waiting)
        work = plan.entries[0][1]
        assert work.kind == "prefill"
        assert work.tokens == 32
        request.active.record(work, 0.0)
        # Next step: the request is now running and continues its prefill.
        next_plan = scheduler.plan_step([request], deque())
        assert next_plan.entries[0][1].tokens == 32
        assert next_plan.entries[0][1].kv_len == 64

    def test_unchunked_oversized_prompt_gets_dedicated_step(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=32, chunked_prefill=False))
        big = make_request(0, Workload(100, 4))
        small = make_request(1, Workload(4, 4))
        waiting = deque([big, small])
        plan = scheduler.plan_step([], waiting)
        # The whole prompt runs alone; FIFO order is preserved (no overtake).
        assert [r.request_id for r in plan.admitted] == [0]
        assert plan.entries[0][1].tokens == 100
        assert len(waiting) == 1

    def test_unchunked_oversized_prompt_waits_behind_partial_budget(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=32, chunked_prefill=False))
        decoding = make_request(0, Workload(8, 8))
        drain_prefill(decoding)
        big = make_request(1, Workload(100, 4))
        waiting = deque([big])
        plan = scheduler.plan_step([decoding], waiting)
        # Budget already partially consumed: the oversized prompt is deferred
        # to a step of its own rather than squeezed in.
        assert plan.admitted == []
        assert len(plan.entries) == 1

    def test_resident_decodes_not_starved_by_chunked_prefill(self):
        """A long chunked prefill must not block resident decodes: decode
        slices are scheduled first, the prefill gets the leftover budget."""
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=64, chunked_prefill=True))
        session = InferenceSession(GPT2, max_seq_len=2048)
        prefilling = make_request(0, Workload(1000, 4), session)
        decoding = make_request(1, Workload(8, 16), session)
        drain_prefill(decoding)
        # The prefill-heavy request is FIRST in the running list, yet every
        # step still carries the decode slice.
        running = [prefilling, decoding]
        for _ in range(5):
            plan = scheduler.plan_step(running, deque())
            kinds = {req.request_id: work for req, work in plan.entries}
            assert kinds[1].kind == "decode"
            assert kinds[0].kind == "prefill"
            assert kinds[0].tokens == 63  # leftover after the decode token
            for req, work in plan.entries:
                req.active.record(work, 0.0)

    def test_empty_queues_empty_plan(self):
        scheduler = ContinuousBatchingScheduler()
        plan = scheduler.plan_step([], deque())
        assert plan.entries == [] and plan.admitted == []


class TestPrefillTokenCap:
    """SARATHI-style hybrid colocation: at most ``prefill_token_cap``
    prefill tokens per step, so prompt bursts cannot monopolise a batch."""

    def prefill_tokens(self, plan):
        return sum(work.tokens for _, work in plan.entries
                   if work.kind == "prefill")

    def test_cap_requires_chunked_prefill(self):
        with pytest.raises(ValueError, match="chunked_prefill"):
            SchedulerConfig(prefill_token_cap=64, chunked_prefill=False)
        with pytest.raises(ValueError, match="prefill_token_cap"):
            SchedulerConfig(prefill_token_cap=0)

    def test_every_step_respects_the_cap(self):
        cap = 24
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=256, prefill_token_cap=cap))
        session = InferenceSession(GPT2, max_seq_len=2048)
        waiting = deque(make_request(i, Workload(100, 4), session)
                        for i in range(4))
        running = []
        for _ in range(40):
            plan = scheduler.plan_step(running, waiting)
            if not plan.entries:
                break
            assert self.prefill_tokens(plan) <= cap
            for req, work in plan.entries:
                req.active.record(work, 0.0)
            running = [r for r in running + plan.admitted
                       if not r.active.finished]
        assert all(not r.active.in_prefill for r in running)

    def test_decodes_unaffected_by_the_cap(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=64, prefill_token_cap=8))
        session = InferenceSession(GPT2, max_seq_len=2048)
        decoding = [make_request(i, Workload(8, 16), session)
                    for i in range(4)]
        for request in decoding:
            drain_prefill(request)
        prefilling = make_request(9, Workload(500, 4), session)
        plan = scheduler.plan_step(decoding + [prefilling], deque())
        kinds = {req.request_id: work for req, work in plan.entries}
        # All four decodes keep their slot; the prefill is clipped to
        # the cap instead of the whole leftover budget.
        for i in range(4):
            assert kinds[i].kind == "decode"
        assert kinds[9].kind == "prefill"
        assert kinds[9].tokens == 8

    def test_cap_exhausted_prefill_waits_without_losing_decode(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=64, prefill_token_cap=8))
        session = InferenceSession(GPT2, max_seq_len=2048)
        first = make_request(0, Workload(100, 4), session)
        second = make_request(1, Workload(100, 4), session)
        plan = scheduler.plan_step([first, second], deque())
        kinds = {req.request_id: work for req, work in plan.entries}
        # The first prefill consumes the whole cap; the second sits the
        # step out entirely rather than getting a zero-token slice.
        assert kinds[0].tokens == 8
        assert 1 not in kinds

    def test_admission_head_of_line_blocks_on_exhausted_cap(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(token_budget=64, prefill_token_cap=8))
        session = InferenceSession(GPT2, max_seq_len=2048)
        waiting = deque([make_request(0, Workload(100, 4), session),
                         make_request(1, Workload(100, 4), session)])
        plan = scheduler.plan_step([], waiting)
        assert [r.request_id for r in plan.admitted] == [0]
        assert self.prefill_tokens(plan) == 8
        assert len(waiting) == 1

    def test_cap_none_is_identical_to_uncapped(self):
        session_a = InferenceSession(GPT2, max_seq_len=2048)
        session_b = InferenceSession(GPT2, max_seq_len=2048)
        plans = []
        for session, config in ((session_a, SchedulerConfig()),
                                (session_b,
                                 SchedulerConfig(prefill_token_cap=None))):
            scheduler = ContinuousBatchingScheduler(config)
            waiting = deque(make_request(i, Workload(64, 8), session)
                            for i in range(3))
            plan = scheduler.plan_step([], waiting)
            plans.append([(req.request_id, work.kind, work.tokens)
                          for req, work in plan.entries])
        assert plans[0] == plans[1]
