"""Tests for trace generation and workload sampling."""

import pytest

from repro.models.workload import Workload, random_workloads
from repro.serving.workload_gen import (
    burst_trace,
    diurnal_trace,
    flash_crowd_trace,
    multi_turn_trace,
    poisson_trace,
    shared_prefix_trace,
    tool_use_trace,
    trace_from_specs,
)


class TestPoissonTrace:
    def test_deterministic_per_seed(self):
        assert poisson_trace(16, 5.0, seed=1) == poisson_trace(16, 5.0, seed=1)
        assert poisson_trace(16, 5.0, seed=1) != poisson_trace(16, 5.0, seed=2)

    def test_arrivals_sorted_and_positive(self):
        trace = poisson_trace(32, 5.0, seed=0)
        arrivals = [t.arrival_s for t in trace]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_mean_rate_roughly_matches(self):
        trace = poisson_trace(500, 10.0, seed=0)
        mean_gap = trace[-1].arrival_s / len(trace)
        assert mean_gap == pytest.approx(0.1, rel=0.2)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="arrival rate"):
            poisson_trace(4, 0.0)
        with pytest.raises(ValueError, match="arrival rate"):
            poisson_trace(4, -2.0)

    def test_negative_request_count_rejected(self):
        with pytest.raises(ValueError, match="num_requests"):
            poisson_trace(-1, 5.0)

    def test_zero_requests_yield_empty_trace(self):
        assert poisson_trace(0, 5.0) == []

    def test_lengths_drawn_from_choices(self):
        trace = poisson_trace(64, 5.0, seed=0,
                              input_choices=(16,), output_choices=(8,))
        assert all(t.workload == Workload(16, 8) for t in trace)


class TestOtherTraces:
    def test_burst_trace_arrives_at_once(self):
        trace = burst_trace([Workload(8, 8), Workload(16, 16)])
        assert [t.arrival_s for t in trace] == [0.0, 0.0]
        assert [t.request_id for t in trace] == [0, 1]

    def test_trace_from_specs_sorts_by_arrival(self):
        trace = trace_from_specs([(2.0, "[8:8]"), (0.5, "[16:4]")])
        assert trace[0].workload == Workload(16, 4)
        assert trace[0].arrival_s == 0.5
        assert trace[1].arrival_s == 2.0

    def test_trace_from_specs_rejects_bad_label(self):
        with pytest.raises(ValueError, match="malformed"):
            trace_from_specs([(0.0, "oops")])

    def test_burst_and_specs_carry_class_and_priority_alike(self):
        """Both single-tenant builders apply priority/slo_class to every
        request — the ``serve-cluster --workloads/--spec`` paths must not
        silently drop the tenant flags (they once did)."""
        workloads = [Workload(8, 8), Workload(16, 16)]
        specs = [(0.0, "[8:8]"), (1.0, "[16:16]")]
        for trace in (burst_trace(workloads, priority=2,
                                  slo_class="interactive"),
                      trace_from_specs(specs, priority=2,
                                       slo_class="interactive")):
            assert all(t.priority == 2 for t in trace)
            assert all(t.slo_class == "interactive" for t in trace)

    def test_burst_and_specs_defaults_unclassed(self):
        for trace in (burst_trace([Workload(8, 8)]),
                      trace_from_specs([(0.0, "[8:8]")])):
            assert all(t.priority == 0 for t in trace)
            assert all(t.slo_class is None for t in trace)

    def test_burst_and_specs_reject_unknown_class(self):
        with pytest.raises(ValueError, match="slo_class"):
            burst_trace([Workload(8, 8)], slo_class="platinum")
        with pytest.raises(ValueError, match="slo_class"):
            trace_from_specs([(0.0, "[8:8]")], slo_class="platinum")


class TestDiurnalTrace:
    def test_deterministic_per_seed(self):
        kwargs = dict(base_rate_hz=2.0, peak_rate_hz=20.0, period_s=10.0)
        assert diurnal_trace(64, seed=1, **kwargs) \
            == diurnal_trace(64, seed=1, **kwargs)
        assert diurnal_trace(64, seed=1, **kwargs) \
            != diurnal_trace(64, seed=2, **kwargs)

    def test_arrivals_sorted_and_count_exact(self):
        trace = diurnal_trace(100, 2.0, 20.0, period_s=10.0, seed=0)
        arrivals = [t.arrival_s for t in trace]
        assert arrivals == sorted(arrivals)
        assert len(trace) == 100
        assert [t.request_id for t in trace] == list(range(100))

    def test_rate_peaks_mid_period(self):
        """Arrivals concentrate around the mid-period crest of the cycle."""
        trace = diurnal_trace(400, 1.0, 40.0, period_s=10.0, seed=0)
        in_period = [t.arrival_s % 10.0 for t in trace]
        crest = sum(1 for t in in_period if 2.5 <= t < 7.5)
        trough = len(in_period) - crest
        assert crest > 2 * trough

    def test_validation(self):
        with pytest.raises(ValueError, match="num_requests"):
            diurnal_trace(-1, 1.0, 2.0, period_s=1.0)
        with pytest.raises(ValueError, match="base rate"):
            diurnal_trace(4, 0.0, 2.0, period_s=1.0)
        with pytest.raises(ValueError, match="peak rate"):
            diurnal_trace(4, 2.0, 1.0, period_s=1.0)
        with pytest.raises(ValueError, match="period"):
            diurnal_trace(4, 1.0, 2.0, period_s=0.0)

    def test_zero_requests_yield_empty_trace(self):
        assert diurnal_trace(0, 1.0, 2.0, period_s=1.0) == []


class TestFlashCrowdTrace:
    def test_deterministic_per_seed(self):
        kwargs = dict(base_rate_hz=2.0, burst_rate_hz=30.0,
                      burst_start_s=2.0, burst_duration_s=1.0)
        assert flash_crowd_trace(64, seed=3, **kwargs) \
            == flash_crowd_trace(64, seed=3, **kwargs)
        assert flash_crowd_trace(64, seed=3, **kwargs) \
            != flash_crowd_trace(64, seed=4, **kwargs)

    def test_burst_window_concentrates_arrivals(self):
        trace = flash_crowd_trace(200, 2.0, 40.0, burst_start_s=3.0,
                                  burst_duration_s=2.0, seed=0)
        in_burst = sum(1 for t in trace if 3.0 <= t.arrival_s < 5.0)
        span = trace[-1].arrival_s
        assert span > 5.0            # traffic continues past the burst
        assert in_burst > len(trace) / 2

    def test_arrivals_sorted_and_count_exact(self):
        trace = flash_crowd_trace(50, 2.0, 30.0, burst_start_s=1.0,
                                  burst_duration_s=1.0, seed=0)
        arrivals = [t.arrival_s for t in trace]
        assert arrivals == sorted(arrivals)
        assert len(trace) == 50

    def test_validation(self):
        with pytest.raises(ValueError, match="num_requests"):
            flash_crowd_trace(-1, 1.0, 2.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="base rate"):
            flash_crowd_trace(4, -1.0, 2.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="burst rate"):
            flash_crowd_trace(4, 2.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="burst start"):
            flash_crowd_trace(4, 1.0, 2.0, -1.0, 1.0)
        with pytest.raises(ValueError, match="burst duration"):
            flash_crowd_trace(4, 1.0, 2.0, 0.0, 0.0)


class TestSharedPrefixValidation:
    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            shared_prefix_trace(4, prefix_len=8, interval_s=-0.1)


class TestConversationalTraces:
    """Multi-turn chat and agentic tool-use session generators."""

    def _session_turns(self, trace, group_prefix):
        """group name -> the session's turns in arrival order (turn 0,
        which carries no prefix declaration, is matched to its session
        by replaying the growing-context arithmetic)."""
        follow_ups = {}
        for request in trace:
            if request.prefix_group is not None:
                follow_ups.setdefault(request.prefix_group, []) \
                    .append(request)
        for turns in follow_ups.values():
            turns.sort(key=lambda r: r.arrival_s)
        return follow_ups

    def test_deterministic_per_seed(self):
        kwargs = dict(num_sessions=6, turns_per_session=4)
        assert multi_turn_trace(seed=5, **kwargs) \
            == multi_turn_trace(seed=5, **kwargs)
        assert multi_turn_trace(seed=5, **kwargs) \
            != multi_turn_trace(seed=6, **kwargs)
        assert tool_use_trace(6, 3, seed=5) == tool_use_trace(6, 3, seed=5)
        assert tool_use_trace(6, 3, seed=5) != tool_use_trace(6, 3, seed=6)

    def test_counts_ids_and_arrival_order(self):
        for trace in (multi_turn_trace(5, 4, seed=1),
                      tool_use_trace(5, 3, seed=1)):
            assert len(trace) == 20          # 5*4 turns / 5*(3+1) calls
            assert [t.request_id for t in trace] == list(range(20))
            arrivals = [t.arrival_s for t in trace]
            assert arrivals == sorted(arrivals)

    def test_prefix_grows_with_accumulated_context(self):
        """Turn k's declared prefix is every earlier turn's input and
        output, so prefixes strictly grow and prompts strictly contain
        their declared prefix."""
        for trace, prefix in ((multi_turn_trace(4, 5, seed=2), "session"),
                              (tool_use_trace(4, 4, seed=2), "agent")):
            follow_ups = self._session_turns(trace, prefix)
            assert len(follow_ups) == 4
            for group, turns in follow_ups.items():
                assert group.startswith(f"{prefix}-")
                assert len(turns) == 4       # turns_per_session - 1
                lens = [t.prefix_len for t in turns]
                assert all(b > a for a, b in zip(lens, lens[1:]))
                for request in turns:
                    assert 0 < request.prefix_len \
                        < request.workload.input_len

    def test_turn_zero_carries_no_prefix(self):
        trace = multi_turn_trace(3, 3, seed=0)
        openers = [t for t in trace if t.prefix_group is None]
        assert len(openers) == 3
        assert all(t.prefix_len == 0 for t in openers)

    def test_tool_use_gaps_are_exactly_the_tool_wait(self):
        """Within an agent, consecutive turns are exactly tool_wait_s
        apart — the tool round-trip is deterministic, unlike chat think
        time."""
        trace = tool_use_trace(3, 4, seed=3, tool_wait_s=0.25)
        for turns in self._session_turns(trace, "agent").values():
            gaps = [b.arrival_s - a.arrival_s
                    for a, b in zip(turns, turns[1:])]
            assert all(gap == pytest.approx(0.25) for gap in gaps)

    def test_tool_use_without_calls_is_single_turn(self):
        trace = tool_use_trace(4, 0, seed=0)
        assert len(trace) == 4
        assert all(t.prefix_group is None for t in trace)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_sessions"):
            multi_turn_trace(-1, 2)
        with pytest.raises(ValueError, match="turns_per_session"):
            multi_turn_trace(2, 0)
        with pytest.raises(ValueError, match="session rate"):
            multi_turn_trace(2, 2, session_rate_hz=0.0)
        with pytest.raises(ValueError, match="think_time_s"):
            multi_turn_trace(2, 2, think_time_s=0.0)
        with pytest.raises(ValueError, match="tool_calls_per_agent"):
            tool_use_trace(2, -1)
        with pytest.raises(ValueError, match="tool_wait_s"):
            tool_use_trace(2, 2, tool_wait_s=0.0)

    def test_zero_sessions_yield_empty_trace(self):
        assert multi_turn_trace(0, 3) == []
        assert tool_use_trace(0, 3) == []


class TestRandomWorkloads:
    def test_seed_reproducible(self):
        assert random_workloads(8, 3) == random_workloads(8, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            random_workloads(-1)

    def test_choices_respected(self):
        for workload in random_workloads(32, 0, (32, 64), (16,)):
            assert workload.input_len in (32, 64)
            assert workload.output_len == 16


class TestEdgeCases:
    """Degenerate trace shapes the cluster/autoscaler sweeps can produce."""

    def test_flat_diurnal_equals_peak_rate_poisson_thinning(self):
        """base == peak degenerates to a homogeneous process: thinning
        accepts every candidate, so the count is exact and arrivals are
        strictly increasing."""
        trace = diurnal_trace(50, 5.0, 5.0, period_s=10.0, seed=0)
        arrivals = [t.arrival_s for t in trace]
        assert len(trace) == 50
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_zero_rate_diurnal_trough_rejected(self):
        """A zero base rate would make the trough a dead zone the thinning
        loop can never exit deterministically — rejected up front."""
        with pytest.raises(ValueError, match="base rate"):
            diurnal_trace(4, 0.0, 10.0, period_s=5.0)

    def test_single_request_flash_crowd(self):
        trace = flash_crowd_trace(1, 2.0, 40.0, burst_start_s=1.0,
                                  burst_duration_s=1.0, seed=0)
        assert len(trace) == 1
        assert trace[0].request_id == 0
        assert trace[0].arrival_s > 0

    def test_single_request_diurnal(self):
        trace = diurnal_trace(1, 1.0, 10.0, period_s=5.0, seed=0)
        assert len(trace) == 1
        assert trace[0].request_id == 0

    def test_requested_count_always_matches_generated(self):
        """num_requests is a contract, not a target: every generator must
        produce exactly that many requests with dense ids, whatever the
        rate profile does."""
        cases = [
            poisson_trace(17, 3.0, seed=2),
            diurnal_trace(17, 1.0, 30.0, period_s=2.0, seed=2),
            flash_crowd_trace(17, 1.0, 50.0, burst_start_s=0.5,
                              burst_duration_s=0.25, seed=2),
            shared_prefix_trace(17, prefix_len=32),
        ]
        for trace in cases:
            assert len(trace) == 17
            assert [t.request_id for t in trace] == list(range(17))

    def test_zero_requests_everywhere(self):
        assert flash_crowd_trace(0, 1.0, 2.0, 0.0, 1.0) == []
        assert shared_prefix_trace(0, prefix_len=8) == []

    def test_priority_tiered_traces_deterministic_per_seed(self):
        """Priority draws share the trace's seeded stream, so a tiered
        trace is still a pure function of its seed (and the sampled
        priorities stay within the declared choices)."""
        kwargs = dict(base_rate_hz=2.0, peak_rate_hz=20.0, period_s=5.0,
                      priority_choices=(0, 1, 2))
        first = diurnal_trace(20, seed=4, **kwargs)
        second = diurnal_trace(20, seed=4, **kwargs)
        assert first == second
        assert any(t.priority for t in first)
        assert all(t.priority in (0, 1, 2) for t in first)
