"""Tests for trace generation and workload sampling."""

import pytest

from repro.models.workload import Workload, random_workloads
from repro.serving.workload_gen import (
    burst_trace,
    poisson_trace,
    trace_from_specs,
)


class TestPoissonTrace:
    def test_deterministic_per_seed(self):
        assert poisson_trace(16, 5.0, seed=1) == poisson_trace(16, 5.0, seed=1)
        assert poisson_trace(16, 5.0, seed=1) != poisson_trace(16, 5.0, seed=2)

    def test_arrivals_sorted_and_positive(self):
        trace = poisson_trace(32, 5.0, seed=0)
        arrivals = [t.arrival_s for t in trace]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_mean_rate_roughly_matches(self):
        trace = poisson_trace(500, 10.0, seed=0)
        mean_gap = trace[-1].arrival_s / len(trace)
        assert mean_gap == pytest.approx(0.1, rel=0.2)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="arrival rate"):
            poisson_trace(4, 0.0)

    def test_lengths_drawn_from_choices(self):
        trace = poisson_trace(64, 5.0, seed=0,
                              input_choices=(16,), output_choices=(8,))
        assert all(t.workload == Workload(16, 8) for t in trace)


class TestOtherTraces:
    def test_burst_trace_arrives_at_once(self):
        trace = burst_trace([Workload(8, 8), Workload(16, 16)])
        assert [t.arrival_s for t in trace] == [0.0, 0.0]
        assert [t.request_id for t in trace] == [0, 1]

    def test_trace_from_specs_sorts_by_arrival(self):
        trace = trace_from_specs([(2.0, "[8:8]"), (0.5, "[16:4]")])
        assert trace[0].workload == Workload(16, 4)
        assert trace[0].arrival_s == 0.5
        assert trace[1].arrival_s == 2.0

    def test_trace_from_specs_rejects_bad_label(self):
        with pytest.raises(ValueError, match="malformed"):
            trace_from_specs([(0.0, "oops")])


class TestRandomWorkloads:
    def test_seed_reproducible(self):
        assert random_workloads(8, 3) == random_workloads(8, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            random_workloads(-1)

    def test_choices_respected(self):
        for workload in random_workloads(32, 0, (32, 64), (16,)):
            assert workload.input_len in (32, 64)
            assert workload.output_len == 16
