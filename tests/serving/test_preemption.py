"""Engine-level tests for KV-capacity-bounded serving with preemption.

The acceptance bar for the KV manager: a trace that overflows capacity must
complete via preemption + recompute (>= 1 preemption reported), while the
same trace under ample capacity reports 0 preemptions and throughput
identical to the capacity-oblivious engine.
"""

import pytest

from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.serving import (
    KVCacheConfig,
    ServingEngine,
    SchedulerConfig,
    burst_trace,
    poisson_trace,
)
from repro.serving.request import RequestState


def kv_mb(total_tokens: int, slack_blocks: int = 0, block_size: int = 16,
          high: float = 0.95, low: float = 0.80) -> KVCacheConfig:
    """A config whose pool holds exactly blocks_for(total_tokens) + slack
    blocks of GPT-2 KV (48 KiB/token at A8)."""
    per_token = GPT2.kv_cache_bytes_per_token(1.0)
    blocks = -(-total_tokens // block_size) + slack_blocks
    return KVCacheConfig(capacity_bytes=blocks * block_size * per_token,
                         block_size=block_size,
                         high_watermark=high, low_watermark=low)


# A trace whose working set (8 concurrent x 256 positions) overflows the
# tight pool below but fits the ample one.
TRACE = poisson_trace(16, 200.0, seed=0,
                      input_choices=(128,), output_choices=(128,))
TIGHT = kv_mb(256, slack_blocks=8)      # ~1.5 requests' worth of blocks
AMPLE = KVCacheConfig.from_capacity_mb(4096.0)


class TestOverflowRegime:
    def test_overflow_completes_via_preemption(self):
        report = ServingEngine(GPT2, kv_config=TIGHT).run(TRACE)
        assert report.completed == len(TRACE)
        assert report.rejected == 0
        assert report.preemptions >= 1
        assert len(report.preemption_events) == report.preemptions
        assert report.total_output_tokens == sum(
            t.workload.output_len for t in TRACE)

    def test_preemption_events_carry_freed_blocks(self):
        report = ServingEngine(GPT2, kv_config=TIGHT).run(TRACE)
        for event in report.preemption_events:
            assert event.blocks_freed > 0
            assert event.device_id == 0
        times = [event.time_s for event in report.preemption_events]
        assert times == sorted(times)

    def test_recompute_does_not_double_count_output_tokens(self):
        """Preempted requests recompute KV, not output: every finished
        request emits exactly its requested output length."""
        trace = burst_trace([Workload(64, 64) for _ in range(6)])
        report = ServingEngine(GPT2, kv_config=kv_mb(128, 4)).run(trace)
        assert report.preemptions >= 1
        assert report.completed == 6
        assert report.total_output_tokens == 6 * 64

    def test_recompute_costs_device_time(self):
        """The same trace must take longer under preemption than with ample
        memory — recompute work is charged to the clock."""
        tight = ServingEngine(GPT2, kv_config=TIGHT).run(TRACE)
        ample = ServingEngine(GPT2, kv_config=AMPLE).run(TRACE)
        assert tight.preemptions > 0
        assert tight.makespan_s > ample.makespan_s
        assert tight.aggregate_tokens_per_s < ample.aggregate_tokens_per_s

    def test_memory_metrics_populated(self):
        report = ServingEngine(GPT2, kv_config=TIGHT).run(TRACE)
        assert 0.0 < report.peak_kv_utilization <= 1.0
        assert 0.0 < report.mean_kv_utilization <= report.peak_kv_utilization
        assert report.kv_samples, "kv occupancy timeline missing"
        device = report.devices[0]
        assert device.kv_blocks_total > 0
        assert 0 < device.kv_peak_blocks <= device.kv_blocks_total
        payload = report.to_dict()
        assert payload["preemptions"] == report.preemptions
        assert payload["peak_kv_utilization"] == report.peak_kv_utilization
        assert len(payload["preemption_events"]) == report.preemptions

    def test_youngest_preempted_first(self):
        """Under pressure the oldest resident keeps its blocks: it is never
        the first victim, so it drains and guarantees forward progress."""
        trace = burst_trace([Workload(96, 96) for _ in range(4)])
        report = ServingEngine(GPT2, kv_config=kv_mb(192, 4)).run(trace)
        assert report.preemptions >= 1
        first_victim = report.preemption_events[0].request_id
        assert first_victim != 0, "oldest request must not be evicted first"


class TestAmpleRegime:
    def test_no_preemptions_and_unchanged_throughput(self):
        managed = ServingEngine(GPT2, kv_config=AMPLE).run(TRACE)
        unmanaged = ServingEngine(GPT2).run(TRACE)
        assert managed.preemptions == 0
        assert managed.preemption_events == []
        assert managed.completed == unmanaged.completed == len(TRACE)
        # Identical scheduling: same clock, same throughput, same latencies.
        assert managed.makespan_s == unmanaged.makespan_s
        assert managed.aggregate_tokens_per_s == unmanaged.aggregate_tokens_per_s
        assert managed.ttft == unmanaged.ttft
        assert managed.e2e_latency == unmanaged.e2e_latency

    def test_unmanaged_engine_reports_no_kv_metrics(self):
        report = ServingEngine(GPT2).run(TRACE)
        assert report.kv_samples == []
        assert report.peak_kv_utilization == 0.0
        assert report.devices[0].kv_blocks_total == 0


class TestAdmissionGuards:
    def test_request_larger_than_pool_rejected(self):
        """A request whose positions outgrow the whole pool can never finish
        even alone — reject at arrival instead of preempt-thrashing."""
        trace = burst_trace([Workload(64, 64), Workload(512, 512),
                             Workload(64, 64)])
        report = ServingEngine(GPT2, max_seq_len=2048,
                               kv_config=kv_mb(256)).run(trace)
        assert report.rejected == 1
        assert report.completed == 2

    def test_single_big_request_fits_alone(self):
        """The idle-device override: a request above the high watermark but
        within the pool is admitted once the device drains."""
        config = kv_mb(256, slack_blocks=0, high=0.5, low=0.3)
        report = ServingEngine(GPT2, kv_config=config).run(
            burst_trace([Workload(128, 128)]))
        assert report.completed == 1
        assert report.rejected == 0

    def test_kv_capacity_below_one_block_rejected_at_init(self):
        with pytest.raises(ValueError, match="block"):
            ServingEngine(GPT2, kv_config=KVCacheConfig(capacity_bytes=1.0))

    def test_filling_to_exactly_high_watermark_never_preempts(self):
        """Admission may fill to exactly the high mark; only growing
        *strictly past* it triggers eviction.  A workload whose peak demand
        lands exactly on the mark must run preemption-free — the boundary
        regression where the engine evicted what it had just admitted."""
        per_token = GPT2.kv_cache_bytes_per_token(1.0)
        # 20 blocks; peak demand 4*blocks(64) + blocks(48) = 19 = 0.95 high.
        config = KVCacheConfig(capacity_bytes=20 * 16 * per_token,
                               block_size=16,
                               high_watermark=0.95, low_watermark=0.70)
        trace = burst_trace([Workload(60, 4)] * 4 + [Workload(44, 4)])
        report = ServingEngine(GPT2, kv_config=config).run(trace)
        assert report.completed == 5
        assert report.preemptions == 0
        assert report.peak_kv_utilization == pytest.approx(0.95)


class TestPreemptedRequestAccounting:
    def test_resume_workload_folds_emitted_tokens(self):
        from repro.serving.request import ServingRequest

        request = ServingRequest(0, Workload(32, 16), 0.0)
        assert request.resume_workload() == Workload(32, 16)
        request.tokens_emitted = 5
        assert request.resume_workload() == Workload(37, 11)
        request.tokens_emitted = 16
        with pytest.raises(RuntimeError, match="emitted"):
            request.resume_workload()

    def test_per_request_preemption_counts_sum_to_report(self):
        engine = ServingEngine(GPT2, kv_config=TIGHT)
        report = engine.run(TRACE)
        # Per-request counters are on the engine's internal requests; the
        # report aggregates per device — totals must agree.
        assert report.preemptions == sum(
            d.preemptions for d in report.devices)

    def test_states_all_terminal(self):
        trace = poisson_trace(12, 100.0, seed=1,
                              input_choices=(64, 128), output_choices=(64,))
        report = ServingEngine(GPT2, kv_config=kv_mb(256, 6)).run(trace)
        assert report.completed + report.rejected == len(trace)
