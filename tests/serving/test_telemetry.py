"""Unit tests for :mod:`repro.serving.telemetry`: the tracer's span
recording and lifecycle helpers, the metrics registry, the run
manifest, the Chrome trace-event export and the ``repro trace``
analysis queries.  End-to-end tracing semantics (kernel equality,
byte-identity when disabled, latency partitioning) live in
``tests/serving/cluster/test_tracing.py``."""

import json
import math
from dataclasses import dataclass

import pytest

from repro.models.workload import Workload
from repro.serving.request import ServingRequest
from repro.serving.slo import SLO_CLASSES
from repro.serving.telemetry import (
    FLEET_LANE,
    INSTANT_KINDS,
    LATENCY_KINDS,
    MetricsRegistry,
    RequestTimeline,
    SpanKind,
    Tracer,
    build_chrome_trace,
    build_manifest,
    config_snapshot,
    critical_path,
    format_critical_path,
    format_slowest,
    format_summary,
    load_trace,
    slowest,
    summarize,
    telemetry_section,
    timelines_from_chrome,
    timelines_from_tracer,
    workload_fingerprint,
    write_chrome_trace,
)


def request(request_id=0, arrival_s=0.0, slo_class=None):
    return ServingRequest(request_id, Workload(8, 4), arrival_s,
                          slo_class=slo_class)


class TestTracer:
    def test_spans_stage_then_flush_into_columns(self):
        tracer = Tracer()
        tracer.span(SpanKind.DECODE, 1.0, 2.0, request_id=3, lane=1,
                    aux=5.0)
        tracer.instant(SpanKind.FIRST_TOKEN, 1.5, request_id=3, lane=1)
        assert len(tracer) == 2
        rows = tracer.rows()
        assert rows.shape == (2, 6)
        assert tuple(rows[0]) == (float(SpanKind.DECODE), 3.0, 1.0, 1.0,
                                  2.0, 5.0)
        # The instant is zero-width.
        assert rows[1][3] == rows[1][4] == 1.5

    def test_flush_threshold_batches_the_staging_list(self):
        tracer = Tracer()
        for i in range(Tracer.FLUSH_THRESHOLD + 10):
            tracer.span(SpanKind.DECODE, float(i), float(i) + 1.0)
        assert len(tracer) == Tracer.FLUSH_THRESHOLD + 10
        assert tracer.rows().shape[0] == Tracer.FLUSH_THRESHOLD + 10

    def test_admitted_closes_queue_span_from_enqueue(self):
        tracer = Tracer()
        tracer.admitted(request(7, arrival_s=1.0), 1.5, lane=0)
        spans = tracer.spans_for(7)
        assert spans[0] == (SpanKind.QUEUE, 1.0, 1.5, 0.0)
        assert spans[1][0] is SpanKind.ADMIT

    def test_preempt_resume_cycle_tiles_the_queue_time(self):
        """After a preemption the next QUEUE span opens at the eviction
        time and the admission marker is RESUME, not ADMIT."""
        tracer = Tracer()
        tracer.admitted(request(1, arrival_s=0.0), 0.2, lane=0)
        tracer.preempted(1, 0.6, lane=0)
        tracer.admitted(request(1, arrival_s=0.0), 0.9, lane=0)
        kinds = [span[0] for span in tracer.spans_for(1)]
        assert kinds == [SpanKind.QUEUE, SpanKind.ADMIT, SpanKind.PREEMPT,
                         SpanKind.QUEUE, SpanKind.RESUME]
        second_queue = tracer.spans_for(1)[3]
        assert (second_queue[1], second_queue[2]) == (0.6, 0.9)

    def test_mark_queued_overrides_next_queue_start(self):
        tracer = Tracer()
        tracer.mark_queued(4, 2.0)
        tracer.admitted(request(4, arrival_s=0.0), 2.5, lane=0)
        assert tracer.spans_for(4)[0] == (SpanKind.QUEUE, 2.0, 2.5, 0.0)

    def test_admitted_registers_slo_class(self):
        tracer = Tracer()
        tracer.admitted(request(2, slo_class=SLO_CLASSES["interactive"]),
                        0.1, lane=0)
        assert tracer.request_classes == {2: "interactive"}

    def test_latency_sum_covers_latency_kinds_only(self):
        tracer = Tracer()
        tracer.span(SpanKind.QUEUE, 0.0, 0.25, request_id=1)
        tracer.span(SpanKind.PREFILL_CHUNK, 0.25, 0.75, request_id=1)
        tracer.instant(SpanKind.FIRST_TOKEN, 0.75, request_id=1)
        tracer.span(SpanKind.STREAM_CHUNK, 0.0, 0.5, request_id=1)
        assert tracer.latency_sum(1) == pytest.approx(0.75)

    def test_sorted_tuples_is_stable_across_insertion_order(self):
        first, second = Tracer(), Tracer()
        first.span(SpanKind.QUEUE, 0.0, 1.0, request_id=1)
        first.span(SpanKind.DECODE, 1.0, 2.0, request_id=1)
        second.span(SpanKind.DECODE, 1.0, 2.0, request_id=1)
        second.span(SpanKind.QUEUE, 0.0, 1.0, request_id=1)
        assert first.sorted_tuples() == second.sorted_tuples()

    def test_span_counts_by_kind_name(self):
        tracer = Tracer()
        tracer.span(SpanKind.DECODE, 0.0, 1.0, request_id=1)
        tracer.span(SpanKind.DECODE, 1.0, 2.0, request_id=1)
        tracer.instant(SpanKind.ADMIT, 0.0, request_id=1)
        assert tracer.span_counts() == {"ADMIT": 1, "DECODE": 2}

    def test_reset_drops_state_but_keeps_kernel_log_setting(self):
        tracer = Tracer()
        tracer.enable_kernel_log()
        tracer.span(SpanKind.DECODE, 0.0, 1.0, request_id=1)
        tracer.metrics.inc("x")
        tracer.kernel_event((0.0, 0, 0, 0, None))
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.metrics.counters == {}
        assert tracer.kernel_log_enabled
        assert tracer.kernel_events() == []

    def test_kind_partitions_are_disjoint(self):
        assert not (LATENCY_KINDS & INSTANT_KINDS)
        assert FLEET_LANE < 0


class TestMetricsRegistry:
    def test_counters_inc_and_absolute_set(self):
        registry = MetricsRegistry()
        registry.inc("migrations")
        registry.inc("migrations", 2.0)
        registry.count("preemptions", 7.0)
        assert registry.counter("migrations") == 3.0
        assert registry.counter("never_touched") == 0.0
        assert list(registry.counters) == ["migrations", "preemptions"]

    def test_gauge_series_records_time_value_rows(self):
        registry = MetricsRegistry()
        registry.sample("queue_depth", 0.0, 4.0)
        registry.sample("queue_depth", 0.5, 2.0)
        assert list(registry.gauge("queue_depth")) == [(0.0, 4.0),
                                                       (0.5, 2.0)]
        assert len(registry) == 1

    def test_summary_is_json_ready(self):
        registry = MetricsRegistry()
        registry.count("kv_migrations", 3.0)
        registry.sample("value_load", 0.0, 1.0)
        registry.sample("value_load", 1.0, 3.0)
        summary = registry.summary()
        assert summary["counters"] == {"kv_migrations": 3.0}
        assert summary["gauges"]["value_load"] == {
            "samples": 2, "last": 3.0, "mean": 2.0, "max": 3.0}
        json.dumps(summary)  # plain scalars only

    def test_telemetry_section_shape(self):
        tracer = Tracer()
        tracer.span(SpanKind.QUEUE, 0.0, 1.0, request_id=1)
        tracer.metrics.count("preemptions", 0.0)
        section = telemetry_section(tracer)
        assert section["spans"] == {"QUEUE": 1}
        assert section["metrics"]["counters"] == {"preemptions": 0.0}


@dataclass
class FakeConfig:
    block_size: int
    label: str


class FakePolicy:
    name = "least_queue"


class TestManifest:
    def test_config_snapshot_forms(self):
        assert config_snapshot(None) is None
        assert config_snapshot(3) == 3
        assert config_snapshot("x") == "x"
        assert config_snapshot(FakeConfig(16, "a")) == {"block_size": 16,
                                                        "label": "a"}
        assert config_snapshot(SpanKind.DECODE) == 3
        assert config_snapshot([1, (2, 3)]) == [1, [2, 3]]
        assert config_snapshot({"b": 2, "a": 1}) == {"a": 1, "b": 2}
        assert config_snapshot(FakePolicy()) == "least_queue"
        assert config_snapshot(object()) == "object"

    def test_workload_fingerprint_tracks_the_trace(self):
        first = [request(0, 0.0), request(1, 0.5)]
        same = [request(0, 0.0), request(1, 0.5)]
        different = [request(0, 0.0), request(1, 0.75)]
        assert workload_fingerprint(first) == workload_fingerprint(same)
        assert workload_fingerprint(first) != workload_fingerprint(
            different)
        assert len(workload_fingerprint(first)) == 16

    def test_build_manifest_merges_configs_and_extra(self):
        from repro import __version__

        manifest = build_manifest(
            component="cluster", model="gpt2",
            requests=[request(0)],
            configs={"scheduler": FakeConfig(16, "s"), "router":
                     FakePolicy()},
            extra={"seed": 7})
        assert manifest["repro_version"] == __version__
        assert manifest["component"] == "cluster"
        assert manifest["workload"]["num_requests"] == 1
        assert manifest["scheduler"] == {"block_size": 16, "label": "s"}
        assert manifest["router"] == "least_queue"
        assert manifest["seed"] == 7
        json.dumps(manifest)


def traced_pair():
    """A two-request tracer: one plain, one slower with an interactive
    class and a KV transfer."""
    tracer = Tracer()
    tracer.span(SpanKind.QUEUE, 0.0, 0.1, request_id=0)
    tracer.span(SpanKind.PREFILL_CHUNK, 0.1, 0.3, request_id=0)
    tracer.instant(SpanKind.FIRST_TOKEN, 0.3, request_id=0)
    tracer.span(SpanKind.DECODE, 0.3, 0.5, request_id=0)

    tracer.request_classes[1] = "interactive"
    tracer.span(SpanKind.QUEUE, 0.0, 0.2, request_id=1)
    tracer.span(SpanKind.PREFILL_CHUNK, 0.2, 0.4, request_id=1)
    tracer.span(SpanKind.KV_TRANSFER, 0.4, 1.0, request_id=1, aux=4096.0)
    tracer.instant(SpanKind.FIRST_TOKEN, 1.1, request_id=1)
    tracer.span(SpanKind.DECODE, 1.0, 1.4, request_id=1)
    tracer.metrics.sample("queue_depth", 0.0, 2.0)
    return tracer


class TestAnalysis:
    def test_timeline_boundaries_and_metrics(self):
        timelines = timelines_from_tracer(traced_pair())
        assert [t.request_id for t in timelines] == [0, 1]
        slow = timelines[1]
        assert slow.slo_class == "interactive"
        assert slow.arrival_s == 0.0
        assert slow.finish_s == pytest.approx(1.4)
        assert slow.e2e_s == pytest.approx(1.4)
        assert slow.ttft_s == pytest.approx(1.1)
        assert slow.metric_value("e2e") == slow.e2e_s
        assert slow.metric_value("ttft") == slow.ttft_s

    def test_breakdown_partitions_and_ttft_clips(self):
        slow = timelines_from_tracer(traced_pair())[1]
        e2e = slow.breakdown("e2e")
        assert math.fsum(e2e.values()) == pytest.approx(slow.e2e_s)
        ttft = slow.breakdown("ttft")
        # The DECODE span [1.0, 1.4] is clipped at first token (1.1).
        assert ttft["DECODE"] == pytest.approx(0.1)
        assert math.fsum(ttft.values()) == pytest.approx(slow.ttft_s)

    def test_breakdown_ttft_empty_without_first_token(self):
        timeline = RequestTimeline(0, spans=[("DECODE", 0.0, 1.0, 0.0)])
        assert timeline.breakdown("ttft") == {}
        assert timeline.ttft_s is None

    def test_summarize_groups_by_class(self):
        summary = summarize(timelines_from_tracer(traced_pair()))
        assert summary["requests"] == 2
        assert set(summary["classes"]) == {"all", "interactive"}
        inter = summary["classes"]["interactive"]
        assert inter["requests"] == 1
        assert inter["breakdown_ms"]["KV_TRANSFER"]["share"] == \
            pytest.approx(600.0 / 1400.0)

    def test_summarize_class_filter(self):
        summary = summarize(timelines_from_tracer(traced_pair()),
                            slo_class="interactive")
        assert summary["requests"] == 1
        assert list(summary["classes"]) == ["interactive"]

    def test_critical_path_defaults_to_p95_exemplar(self):
        result = critical_path(timelines_from_tracer(traced_pair()))
        assert result["request"] == 1  # the slower of the two
        assert result["attributed_ms"] == pytest.approx(
            result["latency_ms"])
        assert result["spans"][0]["kind"] == "KV_TRANSFER"

    def test_critical_path_explicit_request_and_errors(self):
        timelines = timelines_from_tracer(traced_pair())
        result = critical_path(timelines, request_id=0, metric="ttft")
        assert result["request"] == 0
        assert result["latency_ms"] == pytest.approx(300.0)
        with pytest.raises(ValueError, match="not in the trace"):
            critical_path(timelines, request_id=99)

    def test_slowest_ranks_and_truncates(self):
        timelines = timelines_from_tracer(traced_pair())
        result = slowest(timelines, n=1)
        assert [row["request"] for row in result["requests"]] == [1]
        assert result["requests"][0]["breakdown_ms"]["KV_TRANSFER"] == \
            pytest.approx(600.0)

    def test_formatters_render_text(self):
        timelines = timelines_from_tracer(traced_pair())
        assert "trace summary: 2 request(s)" in format_summary(
            summarize(timelines))
        assert "KV_TRANSFER" in format_critical_path(
            critical_path(timelines))
        assert "slowest requests" in format_slowest(slowest(timelines))


class TestChromeExport:
    def test_payload_shape(self):
        tracer = traced_pair()
        payload = build_chrome_trace(
            tracer, manifest={"component": "cluster"},
            lanes={0: "replica 0 [unified]"})
        assert payload["displayTimeUnit"] == "ms"
        assert payload["metadata"] == {"component": "cluster"}
        by_ph = {}
        for event in payload["traceEvents"]:
            by_ph.setdefault(event["ph"], []).append(event)
        # Spans, instants, the gauge counter and lane metadata all land.
        assert {e["name"] for e in by_ph["i"]} == {"FIRST_TOKEN"}
        assert any(e["name"] == "KV_TRANSFER" and
                   e["args"]["aux"] == 4096.0 for e in by_ph["X"])
        assert by_ph["C"][0] == {"name": "queue_depth", "cat": "metrics",
                                 "ph": "C", "pid": 0, "ts": 0.0,
                                 "args": {"queue_depth": 2.0}}
        names = {e["args"]["name"] for e in by_ph["M"]
                 if e["name"] == "process_name"}
        assert names == {"fleet", "replica 0 [unified]"}

    def test_durations_are_microseconds(self):
        tracer = Tracer()
        tracer.span(SpanKind.DECODE, 1.0, 1.5, request_id=0, lane=2)
        event = [e for e in build_chrome_trace(tracer)["traceEvents"]
                 if e["ph"] == "X"][0]
        assert event["ts"] == pytest.approx(1.0e6)
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["pid"] == 3  # lane 2 -> pid 3 (fleet is pid 0)
        assert event["tid"] == 0

    def test_roundtrip_through_file(self, tmp_path):
        tracer = traced_pair()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer, manifest={"seed": 0})
        loaded = load_trace(path)
        direct = timelines_from_tracer(tracer)
        assert [t.request_id for t in loaded] == \
            [t.request_id for t in direct]
        for a, b in zip(loaded, direct):
            assert a.slo_class == b.slo_class
            assert a.e2e_s == pytest.approx(b.e2e_s)
            assert a.ttft_s == pytest.approx(b.ttft_s) \
                if b.ttft_s is not None else a.ttft_s is None
            assert a.breakdown() == pytest.approx(b.breakdown())

    def test_chrome_timelines_ignore_fleet_only_noise(self):
        payload = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "fleet"}},
            {"name": "queue_depth", "ph": "C", "pid": 0, "ts": 0.0,
             "args": {"queue_depth": 1.0}},
            {"name": "DRAIN", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0,
             "dur": 5.0, "args": {"request": -1, "aux": 0.0}},
        ]}
        assert timelines_from_chrome(payload) == []
