"""Randomized invariant sweep over the continuous-batching scheduler.

~200 seeded random configurations/traces drive the scheduler with zero-cost
timing (no performance model — pure planning), asserting on every single
:class:`StepPlan`:

* the token budget is respected (the one documented exception: a dedicated
  step for an unchunked prompt longer than the whole budget);
* the batch never exceeds ``max_batch_size``;
* a finished request is never scheduled;
* admission is FIFO (waiting-queue order, no overtaking) and starvation-free
  — every trace drains within a bounded number of steps;
* with a KV manager: claims never exceed the free pool and block accounting
  stays consistent.

Everything is seeded `random.Random`, so a failure reproduces exactly.
"""

import random
from collections import deque

from repro.runtime.session import ActiveRequest
from repro.serving.kv_manager import KVCacheConfig
from repro.serving.request import RequestState, ServingRequest
from repro.serving.scheduler import ContinuousBatchingScheduler, SchedulerConfig
from repro.models.workload import Workload

NUM_CASES = 200
MAX_STEPS = 5_000   # far above any legitimate drain time for these traces


def random_case(rng: random.Random):
    config = SchedulerConfig(
        max_batch_size=rng.randint(1, 6),
        token_budget=rng.choice([4, 8, 16, 32, 64]),
        chunked_prefill=rng.random() < 0.5,
    )
    requests = [
        ServingRequest(i, Workload(rng.randint(1, 48), rng.randint(1, 12)), 0.0)
        for i in range(rng.randint(1, 10))
    ]
    manager = None
    if rng.random() < 0.5:
        # Provably ample pool: one block of slack per request plus one spare
        # covers every ceil() in blocks_for even if all requests were
        # resident at once, so the capacity-aware path runs but nothing can
        # starve and the sweep needs no preemption loop.
        block_size = rng.choice([4, 8, 16])
        total = sum(r.workload.total_tokens for r in requests)
        config_kv = KVCacheConfig(
            capacity_bytes=float(total + (len(requests) + 1) * block_size),
            block_size=block_size,
            high_watermark=1.0, low_watermark=1.0)
        manager = config_kv.manager_for(bytes_per_token=1.0)
    return config, requests, manager


def check_plan(plan, config, waiting_before, manager, free_before):
    assert plan.entries, "scheduler starved with work available"

    # Token budget, with the documented dedicated-step exception.
    if plan.scheduled_tokens > config.token_budget:
        assert not config.chunked_prefill
        assert len(plan.entries) == 1
        request, work = plan.entries[0]
        assert work.kind == "prefill"
        assert request in plan.admitted

    # Batch-size cap over everything sharing the step.
    assert len(plan.entries) <= config.max_batch_size

    # No finished request is ever scheduled, and no request twice.
    scheduled_ids = [request.request_id for request, _ in plan.entries]
    assert len(set(scheduled_ids)) == len(scheduled_ids)
    for request, _ in plan.entries:
        assert not request.active.finished

    # FIFO admission: admitted requests are exactly a prefix of the waiting
    # queue as it stood before planning (no overtaking).
    admitted_ids = [request.request_id for request in plan.admitted]
    assert admitted_ids == waiting_before[:len(admitted_ids)]

    # KV claims fit the pool the scheduler saw.
    if manager is not None:
        assert plan.claimed_blocks <= free_before
        assert all(blocks >= 0 for blocks in plan.claims.values())
        assert not plan.starved, "ample pool must never starve a resident"


def drain(config, requests, manager):
    """Run the scheduler loop with zero-cost timing until the trace drains."""
    scheduler = ContinuousBatchingScheduler(config)
    waiting = deque(requests)
    for request in waiting:
        request.active = ActiveRequest(request.workload, num_layers=1)
    running = []
    steps = 0

    while waiting or running:
        steps += 1
        assert steps <= MAX_STEPS, "starvation: trace did not drain"
        waiting_before = [request.request_id for request in waiting]
        free_before = manager.free_blocks if manager is not None else 0
        plan = scheduler.plan_step(running, waiting, kv=manager)
        check_plan(plan, config, waiting_before, manager, free_before)

        if manager is not None:
            for request_id, blocks in plan.claims.items():
                manager.claim(request_id, blocks)
        for request in plan.admitted:
            request.state = RequestState.RUNNING
            running.append(request)
        assert len(running) <= config.max_batch_size

        for request, work in plan.entries:
            emitted = request.active.record(work, 0.0)
            request.tokens_emitted += emitted
            if request.active.finished:
                request.state = RequestState.FINISHED
                running.remove(request)
                if manager is not None:
                    manager.release(request.request_id)
    return steps


class TestRandomizedInvariants:
    def test_200_seeded_cases(self):
        for seed in range(NUM_CASES):
            rng = random.Random(seed)
            config, requests, manager = random_case(rng)
            drain(config, requests, manager)
            # Termination bookkeeping: everything finished, full output
            # emitted, and (with a manager) every block returned.
            for request in requests:
                assert request.state is RequestState.FINISHED, f"seed {seed}"
                assert request.tokens_emitted == request.workload.output_len
            if manager is not None:
                assert manager.used_blocks == 0, f"seed {seed}: leaked blocks"

    def test_case_generator_covers_both_modes(self):
        """Meta-check so a refactor cannot silently drop the KV-managed or
        unchunked arms of the sweep."""
        chunked = unchunked = managed = unmanaged = 0
        for seed in range(NUM_CASES):
            config, _, manager = random_case(random.Random(seed))
            chunked += config.chunked_prefill
            unchunked += not config.chunked_prefill
            managed += manager is not None
            unmanaged += manager is None
        assert min(chunked, unchunked, managed, unmanaged) >= NUM_CASES // 10
