"""Tests for prefix-caching KV block reuse: manager lifecycle and engine
integration (ref counting, copy-on-write divergence, computed gating,
idle-cache reclamation, skip-prefill accounting, report metrics)."""

import json

import pytest

from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.runtime.session import InferenceSession
from repro.serving import (
    KVCacheConfig,
    SchedulerConfig,
    ServingEngine,
    poisson_trace,
    shared_prefix_trace,
)
from repro.serving.kv_manager import KVCacheExhausted
from repro.serving.request import ServingRequest
from repro.serving.workload_gen import TimedRequest


def make_manager(num_blocks: int = 16, block_size: int = 16,
                 prefix_cache: bool = True):
    config = KVCacheConfig(capacity_bytes=float(num_blocks * block_size),
                           block_size=block_size,
                           enable_prefix_cache=prefix_cache)
    return config.manager_for(bytes_per_token=1.0)


def shared_request(request_id: int, input_len: int = 72, output_len: int = 8,
                   prefix_len: int = 64, group: str = "g") -> ServingRequest:
    return ServingRequest(request_id, Workload(input_len, output_len), 0.0,
                          prefix_group=group, prefix_len=prefix_len)


class TestRequestPrefixFields:
    def test_prefix_len_requires_group(self):
        with pytest.raises(ValueError, match="prefix_group"):
            ServingRequest(0, Workload(32, 8), 0.0, prefix_len=16)

    def test_prefix_len_bounded_by_prompt(self):
        with pytest.raises(ValueError, match="prefix_len"):
            shared_request(0, input_len=32, prefix_len=64)

    def test_detach_prefix(self):
        request = shared_request(0)
        assert request.shareable_prefix
        request.detach_prefix()
        assert not request.shareable_prefix
        assert request.prefix_len == 0


class TestSkipPrefill:
    def test_skip_advances_cursor_and_caps_at_last_position(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(64, 8))
        assert active.skip_prefix(48) == 48
        assert active.prefilled_tokens == 48
        work = active.next_work()
        assert work.kind == "prefill" and work.tokens == 16
        active = session.start_request(Workload(64, 8))
        # The final prompt position is always computed.
        assert active.skip_prefix(64) == 63

    def test_skip_after_start_rejected(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(64, 8))
        active.record(active.next_work(token_budget=16), 0.0)
        with pytest.raises(RuntimeError, match="already started"):
            active.skip_prefix(16)

    def test_next_work_assume_prefilled_is_pure(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(64, 8))
        assumed = active.next_work(token_budget=256, assume_prefilled=48)
        assert assumed.tokens == 16 and assumed.kv_len == 64
        # Nothing was mutated: the unassisted plan still covers the prompt.
        assert active.next_work(token_budget=256).tokens == 64


class TestManagerLifecycle:
    def test_first_request_creates_then_follower_reuses(self):
        manager = make_manager()
        leader = shared_request(1)
        reuse = manager.prefix_reuse(leader)
        assert reuse.reusable_blocks == 0 and not reuse.blocked
        assert manager.pin_prefix(leader) == reuse
        assert manager.extend_prefix(leader) == 4     # 64 tokens / 16
        manager.claim(1, 2)                           # private remainder
        assert manager.blocks_held(1) == 6
        # Uncomputed blocks block the follower's admission.
        follower = shared_request(2)
        assert manager.prefix_reuse(follower).blocked
        manager.mark_prefix_computed("g", 64)
        reuse = manager.prefix_reuse(follower)
        assert reuse.reusable_blocks == 4
        assert reuse.cached_tokens == 64
        assert reuse.idle_reused == 0                 # leader still holds
        manager.pin_prefix(follower)
        assert manager.extend_prefix(follower) == 0   # nothing to create
        manager.claim(2, 2)
        assert manager.blocks_held(2) == 6
        # Shared blocks are counted once: 4 shared + 2 + 2 private.
        assert manager.used_blocks == 8

    def test_partial_computation_gates_only_uncovered_range(self):
        manager = make_manager()
        leader = shared_request(1, input_len=72, prefix_len=64)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.mark_prefix_computed("g", 32)          # 2 of 4 blocks done
        short = shared_request(2, input_len=40, prefix_len=32)
        reuse = manager.prefix_reuse(short)
        assert not reuse.blocked and reuse.reusable_blocks == 2
        long = shared_request(3, input_len=72, prefix_len=64)
        assert manager.prefix_reuse(long).blocked

    def test_release_retains_computed_blocks_as_idle(self):
        manager = make_manager()
        leader = shared_request(1)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.claim(1, 2)
        manager.mark_prefix_computed("g", 64)
        freed = manager.release(1)
        assert freed == 6
        assert manager.used_blocks == 0
        assert manager.reclaimable_blocks == 4        # cache retained
        assert manager.free_blocks == 12
        # A later follower reuses the idle blocks without allocation.
        follower = shared_request(2)
        reuse = manager.prefix_reuse(follower)
        assert reuse.reusable_blocks == 4 and reuse.idle_reused == 4
        manager.pin_prefix(follower)
        assert manager.reclaimable_blocks == 0
        assert manager.used_blocks == 4

    def test_release_drops_uncomputed_blocks(self):
        """A preempted leader's never-computed blocks hold nothing worth
        caching — they are evicted outright, unblocking the group."""
        manager = make_manager()
        leader = shared_request(1)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.mark_prefix_computed("g", 32)
        manager.release(1)
        assert manager.reclaimable_blocks == 2        # computed half only
        follower = shared_request(2)
        reuse = manager.prefix_reuse(follower)
        assert not reuse.blocked
        assert reuse.reusable_blocks == 2

    def test_idle_cache_reclaimed_on_demand(self):
        """Idle cached blocks are free space: a private claim that needs
        them evicts coldest-first instead of failing."""
        manager = make_manager(num_blocks=8)
        leader = shared_request(1, input_len=72, prefix_len=64)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.mark_prefix_computed("g", 64)
        manager.release(1)
        assert manager.free_blocks == 4
        assert manager.reclaimable_blocks == 4
        manager.claim(2, 6)                           # needs 2 idle blocks
        assert manager.blocks_held(2) == 6
        assert manager.reclaimable_blocks == 2
        with pytest.raises(KVCacheExhausted):
            manager.claim(3, 5)                       # 2 free + 2 idle < 5

    def test_idle_cache_excluded_from_utilization(self):
        manager = make_manager(num_blocks=8)
        leader = shared_request(1, input_len=72, prefix_len=64)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.mark_prefix_computed("g", 64)
        manager.release(1)
        assert manager.utilization == 0.0
        assert not manager.admission_blocked

    def test_cow_divergence_counted(self):
        """A reusing request whose prefix ends mid-block materialises a
        private copy of the partial block — recorded as a CoW copy."""
        manager = make_manager()
        leader = shared_request(1, input_len=72, prefix_len=56)   # 3 full
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.mark_prefix_computed("g", 56)
        assert manager.prefix_cow_copies == 0         # creator, no reuse
        follower = shared_request(2, input_len=72, prefix_len=56)
        manager.pin_prefix(follower)
        assert manager.prefix_cow_copies == 1

    def test_reset_clears_cache(self):
        manager = make_manager()
        leader = shared_request(1)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)
        manager.mark_prefix_computed("g", 64)
        manager.release(1)
        manager.reset()
        assert manager.reclaimable_blocks == 0
        assert manager.free_blocks == manager.num_blocks
        assert manager.prefix_blocks_created == 0

    def test_disabled_cache_never_shares(self):
        manager = make_manager(prefix_cache=False)
        request = shared_request(1)
        assert manager.prefix_reuse(request).reusable_blocks == 0
        assert not manager.prefix_cache_enabled


AMPLE = KVCacheConfig.from_capacity_mb(512.0, enable_prefix_cache=True)
AMPLE_OFF = KVCacheConfig.from_capacity_mb(512.0)
SCHEDULER = SchedulerConfig(max_batch_size=4, token_budget=256)


class TestEngineIntegration:
    TRACE = shared_prefix_trace(12, prefix_len=192, unique_len=16,
                                output_len=32)

    def test_shared_trace_completes_with_high_hit_rate(self):
        report = ServingEngine(GPT2, kv_config=AMPLE,
                               scheduler_config=SCHEDULER).run(self.TRACE)
        assert report.completed == 12
        assert report.prefix_cache_enabled
        assert report.prefix_hit_rate > 0.5
        assert report.shared_kv_blocks_created == 192 // 16
        assert report.shared_kv_blocks_reused > 0
        assert report.preemptions == 0

    def test_cache_on_beats_cache_off(self):
        on = ServingEngine(GPT2, kv_config=AMPLE,
                           scheduler_config=SCHEDULER).run(self.TRACE)
        off = ServingEngine(GPT2, kv_config=AMPLE_OFF,
                            scheduler_config=SCHEDULER).run(self.TRACE)
        assert on.aggregate_tokens_per_s > off.aggregate_tokens_per_s
        assert on.ttft.mean < off.ttft.mean
        assert on.makespan_s < off.makespan_s

    def test_cache_off_identical_to_unmanaged(self):
        """Shared-prefix metadata on the trace is inert without the cache:
        the managed-ample engine still matches the unmanaged engine."""
        off = ServingEngine(GPT2, kv_config=AMPLE_OFF,
                            scheduler_config=SCHEDULER).run(self.TRACE)
        unmanaged = ServingEngine(GPT2,
                                  scheduler_config=SCHEDULER).run(self.TRACE)
        assert off.makespan_s == unmanaged.makespan_s
        assert off.ttft == unmanaged.ttft
        assert off.prefix_hit_rate == 0.0
        assert "prefix_cache" not in off.to_dict()
        assert "prefix_cache" not in unmanaged.to_dict()

    def test_non_shared_trace_unaffected_by_enabling_cache(self):
        """With no prefix groups in the trace, enabling the cache must not
        change a single scheduling decision."""
        trace = poisson_trace(16, 50.0, seed=2)
        on = ServingEngine(GPT2, kv_config=AMPLE,
                           scheduler_config=SCHEDULER).run(trace)
        off = ServingEngine(GPT2, kv_config=AMPLE_OFF,
                            scheduler_config=SCHEDULER).run(trace)
        on_payload = on.to_dict()
        # The hit-rate denominator counts every admitted prompt token; with
        # no groups in the trace nothing is reused or shared.
        assert on_payload.pop("prefix_cache") == {
            "hit_rate": 0.0,
            "prompt_tokens": sum(t.workload.input_len for t in trace),
            "tokens_reused": 0,
            "shared_blocks_created": 0, "shared_blocks_reused": 0,
            "cow_copies": 0}
        off_payload = off.to_dict()
        # The manifest truthfully records the differing cache flag; every
        # scheduling outcome must still be identical.
        assert on_payload.pop("manifest")["kv_cache"]["enable_prefix_cache"]
        assert not off_payload.pop("manifest")["kv_cache"][
            "enable_prefix_cache"]
        assert json.dumps(on_payload, sort_keys=True) \
            == json.dumps(off_payload, sort_keys=True)

    def test_report_dict_carries_prefix_metrics(self):
        report = ServingEngine(GPT2, kv_config=AMPLE,
                               scheduler_config=SCHEDULER).run(self.TRACE)
        payload = report.to_dict()["prefix_cache"]
        assert payload["hit_rate"] == pytest.approx(report.prefix_hit_rate)
        assert payload["tokens_reused"] == report.prefix_tokens_reused
        assert payload["shared_blocks_created"] == 12
        assert "prefix cache:" in report.format()

    def test_determinism_with_prefix_cache(self):
        first = ServingEngine(GPT2, kv_config=AMPLE,
                              scheduler_config=SCHEDULER).run(self.TRACE)
        second = ServingEngine(GPT2, kv_config=AMPLE,
                               scheduler_config=SCHEDULER).run(self.TRACE)
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)

    def test_multiple_groups_cached_independently(self):
        trace = shared_prefix_trace(12, prefix_len=96, unique_len=16,
                                    output_len=16, num_groups=3)
        report = ServingEngine(GPT2, kv_config=AMPLE,
                               scheduler_config=SCHEDULER).run(trace)
        assert report.completed == 12
        assert report.shared_kv_blocks_created == 3 * (96 // 16)
        assert report.prefix_hit_rate > 0.3

    def test_tight_pool_still_completes_and_cache_still_wins(self):
        """Under real memory pressure the cache still pays for itself:
        everything completes and throughput stays ahead of cache-off.
        (Preemption *counts* may differ either way — sharing admits more
        concurrent residents, which shifts the pressure dynamics — but
        idle cache itself is reclaimable and never strands capacity.)"""
        per_token = GPT2.kv_cache_bytes_per_token(1.0)
        def config(prefix):
            return KVCacheConfig(capacity_bytes=40 * 16 * per_token,
                                 block_size=16, high_watermark=0.9,
                                 low_watermark=0.7,
                                 enable_prefix_cache=prefix)
        trace = shared_prefix_trace(8, prefix_len=96, unique_len=32,
                                    output_len=64)
        on = ServingEngine(GPT2, kv_config=config(True)).run(trace)
        off = ServingEngine(GPT2, kv_config=config(False)).run(trace)
        assert on.completed == off.completed == 8
        assert on.aggregate_tokens_per_s > off.aggregate_tokens_per_s

    def test_preempted_request_detaches_and_recomputes(self):
        """A victim releases its shared references and resumes privately;
        every request still emits exactly its output length."""
        per_token = GPT2.kv_cache_bytes_per_token(1.0)
        config = KVCacheConfig(capacity_bytes=28 * 16 * per_token,
                               block_size=16, high_watermark=0.9,
                               low_watermark=0.7, enable_prefix_cache=True)
        trace = shared_prefix_trace(6, prefix_len=64, unique_len=32,
                                    output_len=96)
        report = ServingEngine(GPT2, kv_config=config).run(trace)
        assert report.completed == 6
        assert report.total_output_tokens == 6 * 96
        assert report.preemptions >= 1

    def test_sub_block_prefix_takes_private_path(self):
        """A shared prefix shorter than one block has no full block to
        share: such requests run on the plain private path end to end.
        Regression: two concurrent zero-share group members used to crash
        the manager's release (the first member's release garbage-collected
        the empty group, the second dereferenced None)."""
        workload = Workload(24, 8)
        trace = [TimedRequest(i, workload, 0.0,
                              prefix_group="tiny", prefix_len=8)
                 for i in range(6)]
        report = ServingEngine(GPT2, kv_config=AMPLE,
                               scheduler_config=SCHEDULER).run(trace)
        assert report.completed == 6
        assert report.shared_kv_blocks_created == 0
        assert report.shared_kv_blocks_reused == 0
        assert report.prefix_hit_rate == 0.0

    def test_cli_sub_block_shared_prefix_completes(self):
        """The CLI path that used to crash: --shared-prefix smaller than
        the block size."""
        from repro.cli import main

        assert main(["serve-sim", "--requests", "8", "--arrival-rate", "40",
                     "--kv-capacity-mb", "256", "--prefix-cache",
                     "--shared-prefix", "8", "--no-baseline"]) == 0

    def test_priority_zero_trace_requests_accept_prefix_fields(self):
        trace = [TimedRequest(0, Workload(64, 8), 0.0,
                              prefix_group="g", prefix_len=32)]
        report = ServingEngine(GPT2, kv_config=AMPLE).run(trace)
        assert report.completed == 1
        # A lone group member creates blocks but reuses nothing.
        assert report.prefix_hit_rate == 0.0
        assert report.shared_kv_blocks_created == 2
