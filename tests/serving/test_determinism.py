"""Determinism regression tests for the serving tier.

Serving experiments are only reproducible if (a) trace generation is a pure
function of its seed and (b) the engine makes byte-identical decisions on
identical traces — including the KV-pressure path, whose preemption choices
must not depend on dict ordering or float incidentals.  These tests guard
``random.Random`` usage drift (e.g. someone reaching for the global
``random`` module) and any nondeterminism sneaking into the engine loop.
"""

import json

from repro.models.config import GPT2
from repro.serving import (
    KVCacheConfig,
    SchedulerConfig,
    ServingEngine,
    poisson_trace,
)


def trace_fingerprint(trace) -> str:
    """A byte-exact rendering of a trace (repr of floats is exact)."""
    return json.dumps([
        [t.request_id, t.workload.input_len, t.workload.output_len,
         repr(t.arrival_s)]
        for t in trace
    ])


class TestTraceDeterminism:
    def test_same_seed_byte_identical(self):
        first = poisson_trace(64, 8.0, seed=42)
        second = poisson_trace(64, 8.0, seed=42)
        assert first == second
        assert trace_fingerprint(first) == trace_fingerprint(second)

    def test_different_seeds_differ(self):
        assert trace_fingerprint(poisson_trace(64, 8.0, seed=0)) \
            != trace_fingerprint(poisson_trace(64, 8.0, seed=1))

    def test_generation_is_isolated_from_global_random(self):
        """Interleaving draws from the global RNG must not perturb the
        trace — seeded ``random.Random`` instances only."""
        import random

        first = poisson_trace(16, 8.0, seed=7)
        random.random()
        second = poisson_trace(16, 8.0, seed=7)
        assert trace_fingerprint(first) == trace_fingerprint(second)


class TestEngineDeterminism:
    def test_two_runs_identical_report_dict(self):
        trace = poisson_trace(24, 20.0, seed=3)
        first = ServingEngine(GPT2, num_devices=2).run(trace)
        second = ServingEngine(GPT2, num_devices=2).run(trace)
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)

    def test_same_engine_rerun_identical(self):
        trace = poisson_trace(12, 20.0, seed=5)
        engine = ServingEngine(GPT2, num_devices=1)
        assert json.dumps(engine.run(trace).to_dict()) \
            == json.dumps(engine.run(trace).to_dict())

    def test_preemption_path_deterministic(self):
        """The memory-pressure regime — preemption victim choice, requeue
        order, block claims — must replay byte-identically."""
        trace = poisson_trace(20, 100.0, seed=0,
                              input_choices=(128,), output_choices=(128,))
        kv = KVCacheConfig.from_capacity_mb(
            20.0, high_watermark=0.90, low_watermark=0.70)
        scheduler = SchedulerConfig(max_batch_size=8)
        first = ServingEngine(GPT2, scheduler_config=scheduler,
                              kv_config=kv).run(trace)
        second = ServingEngine(GPT2, scheduler_config=scheduler,
                               kv_config=kv).run(trace)
        assert first.preemptions >= 1, "regime check: pressure expected"
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)


class TestCliSeedPlumbing:
    """The single --seed flag must make whole CLI reports a pure function
    of their arguments — every trace generator draws from it, none from a
    private default."""

    def serve_sim_report(self, tmp_path, seed, name):
        from repro.cli import main

        path = tmp_path / name
        assert main(["serve-sim", "--requests", "8", "--arrival-rate", "30",
                     "--seed", str(seed), "--no-baseline",
                     "--json", str(path)]) == 0
        return path.read_bytes()

    def serve_cluster_report(self, tmp_path, seed, name, trace="poisson"):
        from repro.cli import main

        path = tmp_path / name
        assert main(["serve-cluster", "--requests", "12", "--replicas", "2",
                     "--trace", trace, "--arrival-rate", "20",
                     "--seed", str(seed), "--json", str(path)]) == 0
        return path.read_bytes()

    def test_serve_sim_seed_identical_reports(self, tmp_path):
        first = self.serve_sim_report(tmp_path, 7, "a.json")
        second = self.serve_sim_report(tmp_path, 7, "b.json")
        assert first == second
        assert first != self.serve_sim_report(tmp_path, 8, "c.json")

    def test_serve_cluster_seed_identical_reports(self, tmp_path):
        first = self.serve_cluster_report(tmp_path, 7, "a.json")
        second = self.serve_cluster_report(tmp_path, 7, "b.json")
        assert first == second
        assert first != self.serve_cluster_report(tmp_path, 8, "c.json")

    def test_serve_cluster_seed_reaches_every_generator(self, tmp_path):
        for trace in ("diurnal", "flash_crowd"):
            first = self.serve_cluster_report(tmp_path, 3, "a.json", trace)
            second = self.serve_cluster_report(tmp_path, 3, "b.json", trace)
            assert first == second
            assert first != self.serve_cluster_report(tmp_path, 4, "c.json",
                                                      trace)

    def serve_cluster_kernel_report(self, tmp_path, seed, name, *extra):
        from repro.cli import main

        path = tmp_path / name
        fleet = [] if "--disaggregate" in extra else ["--replicas", "2"]
        assert main(["serve-cluster", "--requests", "12", *fleet,
                     "--arrival-rate", "20", "--seed", str(seed),
                     *extra, "--json", str(path)]) == 0
        return path.read_bytes()

    def test_event_kernel_cli_reports_are_deterministic(self, tmp_path):
        """serve-cluster under the (default) event kernel: same seed →
        byte-identical JSON, run to run."""
        first = self.serve_cluster_kernel_report(
            tmp_path, 11, "a.json", "--kernel", "event")
        second = self.serve_cluster_kernel_report(
            tmp_path, 11, "b.json", "--kernel", "event")
        assert first == second

    def test_event_kernel_cli_matches_step_kernel(self, tmp_path):
        """The kernel flag must not change the report: --kernel event and
        --kernel step emit byte-identical JSON for the same seed."""
        event = self.serve_cluster_kernel_report(
            tmp_path, 11, "a.json", "--kernel", "event")
        step = self.serve_cluster_kernel_report(
            tmp_path, 11, "b.json", "--kernel", "step")
        assert event == step

    def test_event_kernel_cli_disaggregated_deterministic(self, tmp_path):
        """The disaggregated path (KV migrations through TRANSFER_LANDED
        events) stays byte-deterministic under the event kernel too."""
        disagg = ("--disaggregate", "--prefill-replicas", "1",
                  "--decode-replicas", "2")
        first = self.serve_cluster_kernel_report(
            tmp_path, 5, "a.json", *disagg)
        second = self.serve_cluster_kernel_report(
            tmp_path, 5, "b.json", *disagg)
        assert first == second
        step = self.serve_cluster_kernel_report(
            tmp_path, 5, "c.json", *disagg, "--kernel", "step")
        assert first == step
