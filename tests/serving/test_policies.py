"""Tests for the pluggable admission/placement/preemption policy layers."""

import json

import pytest

from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.serving import (
    KVCacheConfig,
    SchedulerConfig,
    ServingEngine,
    burst_trace,
    poisson_trace,
)
from repro.serving.policies import (
    ADMISSION_POLICIES,
    PLACEMENT_POLICIES,
    PREEMPTION_POLICIES,
    DeviceLoad,
    resolve_admission_policy,
    resolve_placement_policy,
    resolve_preemption_policy,
)
from repro.serving.request import ServingRequest
from repro.serving.workload_gen import TimedRequest


def kv_blocks(total_tokens: int, slack_blocks: int = 0, block_size: int = 16,
              high: float = 0.95, low: float = 0.80,
              prefix_cache: bool = False) -> KVCacheConfig:
    """A pool of exactly blocks_for(total_tokens) + slack GPT-2 KV blocks."""
    per_token = GPT2.kv_cache_bytes_per_token(1.0)
    blocks = -(-total_tokens // block_size) + slack_blocks
    return KVCacheConfig(capacity_bytes=blocks * block_size * per_token,
                         block_size=block_size,
                         high_watermark=high, low_watermark=low,
                         enable_prefix_cache=prefix_cache)


def priority_trace(priorities, workload=Workload(64, 32)):
    return [TimedRequest(i, workload, 0.0, priority=p)
            for i, p in enumerate(priorities)]


class TestPolicyUnits:
    def test_fcfs_order_is_identity(self):
        requests = [ServingRequest(i, Workload(8, 8), float(i))
                    for i in (2, 0, 1)]
        policy = resolve_admission_policy("fcfs")
        assert not policy.reorders
        assert policy.order(requests) == requests

    def test_largest_kv_without_manager_falls_back_to_youngest(self):
        requests = [ServingRequest(i, Workload(8, 8), 0.0) for i in range(3)]
        policy = resolve_preemption_policy("largest_kv")
        assert policy.select_victim(requests, None) is requests[-1]

    def test_largest_kv_picks_biggest_holder(self):
        from repro.serving.kv_manager import KVCacheConfig

        manager = KVCacheConfig(capacity_bytes=160.0, block_size=16) \
            .manager_for(bytes_per_token=1.0)
        requests = [ServingRequest(i, Workload(8, 8), 0.0) for i in range(3)]
        manager.claim(0, 2)
        manager.claim(1, 5)
        manager.claim(2, 2)
        policy = resolve_preemption_policy("largest_kv")
        assert policy.select_victim(requests, manager) is requests[1]
        # Tie on footprint: youngest wins.
        manager.release(1)
        assert policy.select_victim(
            [requests[0], requests[2]], manager) is requests[2]

    def test_device_load_free_blocks(self):
        load = DeviceLoad(0, kv_blocks=12, kv_blocks_total=10)
        assert load.kv_blocks_free == -2

    def test_largest_kv_ranks_by_releasable_not_gross_footprint(self):
        """A follower whose footprint is mostly shared prefix blocks (still
        referenced by the leader) frees almost nothing when evicted — the
        policy must prefer the private-heavy request instead."""
        from repro.serving.kv_manager import KVCacheConfig

        manager = KVCacheConfig(capacity_bytes=640.0, block_size=16,
                                enable_prefix_cache=True) \
            .manager_for(bytes_per_token=1.0)
        leader = ServingRequest(0, Workload(160, 8), 0.0,
                                prefix_group="g", prefix_len=144)
        follower = ServingRequest(1, Workload(160, 8), 0.0,
                                  prefix_group="g", prefix_len=144)
        private = ServingRequest(2, Workload(8, 8), 0.0)
        manager.pin_prefix(leader)
        manager.extend_prefix(leader)          # 9 shared blocks
        manager.claim(0, 1)
        manager.mark_prefix_computed("g", 144)
        manager.pin_prefix(follower)           # references the same 9
        manager.claim(1, 1)
        manager.claim(2, 8)
        assert manager.blocks_held(1) == 10    # gross: looks biggest
        assert manager.releasable_blocks(1) == 1
        assert manager.releasable_blocks(2) == 8
        policy = resolve_preemption_policy("largest_kv")
        victim = policy.select_victim([leader, follower, private], manager)
        assert victim is private


class TestRegistries:
    def test_registry_names_match_policy_names(self):
        for registry in (ADMISSION_POLICIES, PLACEMENT_POLICIES,
                         PREEMPTION_POLICIES):
            for name, cls in registry.items():
                assert cls.name == name

    def test_resolvers_accept_names_and_instances(self):
        policy = resolve_admission_policy("priority")
        assert resolve_admission_policy(policy) is policy
        policy = resolve_placement_policy("least_loaded")
        assert resolve_placement_policy(policy) is policy
        policy = resolve_preemption_policy("largest_kv")
        assert resolve_preemption_policy(policy) is policy

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            resolve_admission_policy("lifo")
        with pytest.raises(ValueError, match="placement"):
            resolve_placement_policy("random")
        with pytest.raises(ValueError, match="preemption"):
            resolve_preemption_policy("oldest")
        with pytest.raises(ValueError, match="admission"):
            SchedulerConfig(admission="lifo")
        with pytest.raises(ValueError, match="placement"):
            ServingEngine(GPT2, placement="nope")
        with pytest.raises(ValueError, match="preemption"):
            ServingEngine(GPT2, preemption="nope")


class TestDefaultsReproducePriorArt:
    """The refactor's backward-compatibility bar: default policies must be
    indistinguishable from the pre-policy engine."""

    def test_defaults_equal_explicit_default_policies(self):
        trace = poisson_trace(24, 30.0, seed=3)
        implicit = ServingEngine(GPT2, num_devices=2).run(trace)
        explicit = ServingEngine(
            GPT2, num_devices=2,
            scheduler_config=SchedulerConfig(admission="fcfs"),
            placement="round_robin", preemption="youngest").run(trace)
        assert json.dumps(implicit.to_dict(), sort_keys=True) \
            == json.dumps(explicit.to_dict(), sort_keys=True)

    def test_defaults_equal_explicit_under_kv_pressure(self):
        trace = poisson_trace(16, 200.0, seed=0,
                              input_choices=(128,), output_choices=(128,))
        kv = kv_blocks(256, slack_blocks=8)
        implicit = ServingEngine(GPT2, kv_config=kv).run(trace)
        explicit = ServingEngine(
            GPT2, kv_config=kv,
            scheduler_config=SchedulerConfig(admission="fcfs"),
            placement="round_robin", preemption="youngest").run(trace)
        assert implicit.preemptions >= 1, "regime check: pressure expected"
        assert json.dumps(implicit.to_dict(), sort_keys=True) \
            == json.dumps(explicit.to_dict(), sort_keys=True)

    def test_round_robin_matches_arrival_index_sharding(self):
        trace = burst_trace([Workload(8, 4) for _ in range(6)])
        report = ServingEngine(GPT2, num_devices=3,
                               placement="round_robin").run(trace)
        assert [d.requests_served for d in report.devices] == [2, 2, 2]


class TestAdmissionPolicies:
    @staticmethod
    def make_waiting(specs):
        """A waiting deque of (priority, input_len) requests, arrival = id."""
        from collections import deque

        from repro.runtime.session import InferenceSession

        session = InferenceSession(GPT2)
        waiting = deque()
        for request_id, (priority, input_len) in enumerate(specs):
            request = ServingRequest(request_id, Workload(input_len, 8),
                                     arrival_s=float(request_id),
                                     priority=priority)
            request.active = session.start_request(request.workload)
            waiting.append(request)
        return waiting

    def test_priority_admitted_before_lower_tiers(self):
        from repro.serving.scheduler import ContinuousBatchingScheduler

        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=2, token_budget=64,
                            admission="priority"))
        waiting = self.make_waiting([(0, 8), (0, 8), (2, 8), (1, 8)])
        plan = scheduler.plan_step([], waiting)
        assert [r.request_id for r in plan.admitted] == [2, 3]
        # The rest of the queue is left in policy order for the next step.
        assert [r.request_id for r in waiting] == [0, 1]

    def test_priority_ties_break_by_arrival(self):
        from repro.serving.scheduler import ContinuousBatchingScheduler

        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=3, token_budget=64,
                            admission="priority"))
        waiting = self.make_waiting([(1, 8), (0, 8), (1, 8)])
        plan = scheduler.plan_step([], waiting)
        assert [r.request_id for r in plan.admitted] == [0, 2, 1]

    def test_shortest_prompt_admits_short_first(self):
        from repro.serving.scheduler import ContinuousBatchingScheduler

        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=2, token_budget=256,
                            admission="shortest_prompt"))
        waiting = self.make_waiting([(0, 128), (0, 16), (0, 64)])
        plan = scheduler.plan_step([], waiting)
        assert [r.request_id for r in plan.admitted] == [1, 2]

    def test_shortest_prompt_first_improves_mean_ttft(self):
        """SJF on prefill: one long prompt ahead of many short ones — mean
        TTFT must drop versus FCFS (the classic convoy effect)."""
        workloads = [Workload(256, 8)] + [Workload(16, 8)] * 6
        trace = burst_trace(workloads)
        fcfs = ServingEngine(
            GPT2,
            scheduler_config=SchedulerConfig(max_batch_size=1)).run(trace)
        sjf = ServingEngine(
            GPT2,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, admission="shortest_prompt")).run(trace)
        assert sjf.completed == fcfs.completed == 7
        assert sjf.ttft.mean < fcfs.ttft.mean

    def test_admission_policy_is_deterministic(self):
        trace = poisson_trace(20, 50.0, seed=9,
                              priority_choices=(0, 1, 2))
        scheduler = SchedulerConfig(max_batch_size=2, admission="priority")
        first = ServingEngine(GPT2, scheduler_config=scheduler).run(trace)
        second = ServingEngine(GPT2, scheduler_config=scheduler).run(trace)
        assert json.dumps(first.to_dict(), sort_keys=True) \
            == json.dumps(second.to_dict(), sort_keys=True)


class TestPlacementPolicies:
    def test_least_loaded_balances_token_load(self):
        """Round-robin piles both long requests onto device 0; least-loaded
        alternates by token mass."""
        workloads = [Workload(128, 128), Workload(8, 8),
                     Workload(128, 128), Workload(8, 8)]
        trace = burst_trace(workloads)
        rr = ServingEngine(GPT2, num_devices=2,
                           placement="round_robin").run(trace)
        ll = ServingEngine(GPT2, num_devices=2,
                           placement="least_loaded").run(trace)
        rr_tokens = sorted(d.tokens_generated for d in rr.devices)
        ll_tokens = sorted(d.tokens_generated for d in ll.devices)
        assert rr_tokens == [16, 256]       # both long ones on one device
        assert ll_tokens == [136, 136]      # one long + one short each
        assert ll.makespan_s < rr.makespan_s

    def test_kv_aware_spreads_block_demand(self):
        workloads = [Workload(128, 128), Workload(8, 8),
                     Workload(128, 128), Workload(8, 8)]
        trace = burst_trace(workloads)
        report = ServingEngine(GPT2, num_devices=2,
                               kv_config=KVCacheConfig.from_capacity_mb(64.0),
                               placement="kv_aware").run(trace)
        assert sorted(d.tokens_generated for d in report.devices) \
            == [136, 136]

    def test_kv_aware_without_manager_degrades_to_least_loaded(self):
        workloads = [Workload(128, 128), Workload(8, 8),
                     Workload(128, 128), Workload(8, 8)]
        trace = burst_trace(workloads)
        kv_aware = ServingEngine(GPT2, num_devices=2,
                                 placement="kv_aware").run(trace).to_dict()
        least = ServingEngine(GPT2, num_devices=2,
                              placement="least_loaded").run(trace).to_dict()
        # The manifest truthfully records the *configured* policies, which
        # differ; everything the runs produced must still be identical.
        assert kv_aware.pop("manifest")["placement"] == "kv_aware"
        assert least.pop("manifest")["placement"] == "least_loaded"
        assert json.dumps(kv_aware, sort_keys=True) \
            == json.dumps(least, sort_keys=True)

    def test_selector_sees_running_tally(self):
        loads = [DeviceLoad(0), DeviceLoad(1)]
        rr = resolve_placement_policy("round_robin")
        request = ServingRequest(0, Workload(8, 8), 0.0)
        assert rr.select_device(request, loads) == 0
        loads[0].requests += 1
        assert rr.select_device(request, loads) == 1


class TestPreemptionPolicies:
    TRACE = poisson_trace(16, 200.0, seed=0,
                          input_choices=(128,), output_choices=(128,))
    TIGHT = kv_blocks(256, slack_blocks=8)

    def test_all_policies_complete_under_pressure(self):
        for name in PREEMPTION_POLICIES:
            report = ServingEngine(GPT2, kv_config=self.TIGHT,
                                   preemption=name).run(self.TRACE)
            assert report.completed == len(self.TRACE), name
            assert report.preemptions >= 1, name
            assert report.total_output_tokens == sum(
                t.workload.output_len for t in self.TRACE), name

    def test_lowest_priority_equals_youngest_on_uniform_tiers(self):
        """With all priorities equal the tie-break is youngest-first, so
        the two policies must make byte-identical decisions."""
        youngest = ServingEngine(GPT2, kv_config=self.TIGHT,
                                 preemption="youngest").run(self.TRACE) \
            .to_dict()
        lowest = ServingEngine(GPT2, kv_config=self.TIGHT,
                               preemption="lowest_priority") \
            .run(self.TRACE).to_dict()
        # The manifest truthfully records the *configured* policies, which
        # differ; everything the runs produced must still be identical.
        assert youngest.pop("manifest")["preemption"] == "youngest"
        assert lowest.pop("manifest")["preemption"] == "lowest_priority"
        assert json.dumps(youngest, sort_keys=True) \
            == json.dumps(lowest, sort_keys=True)

    def test_lowest_priority_protects_high_tier(self):
        """Under pressure the high-priority request is never the victim
        while lower tiers are resident."""
        workload = Workload(96, 96)
        trace = [TimedRequest(i, workload, 0.0,
                              priority=(2 if i == 0 else 0))
                 for i in range(4)]
        config = kv_blocks(192, slack_blocks=4)
        report = ServingEngine(GPT2, kv_config=config,
                               preemption="lowest_priority").run(trace)
        assert report.preemptions >= 1
        assert all(event.request_id != 0
                   for event in report.preemption_events)
        assert report.completed == 4

    def test_largest_kv_frees_most_per_eviction(self):
        """Largest-footprint eviction needs at most as many victims as
        youngest-first on the same pressured trace."""
        youngest = ServingEngine(GPT2, kv_config=self.TIGHT,
                                 preemption="youngest").run(self.TRACE)
        largest = ServingEngine(GPT2, kv_config=self.TIGHT,
                                preemption="largest_kv").run(self.TRACE)
        assert largest.preemptions <= youngest.preemptions

    def test_policy_selection_determinism(self):
        for name in PREEMPTION_POLICIES:
            first = ServingEngine(GPT2, kv_config=self.TIGHT,
                                  preemption=name).run(self.TRACE)
            second = ServingEngine(GPT2, kv_config=self.TIGHT,
                                   preemption=name).run(self.TRACE)
            assert json.dumps(first.to_dict(), sort_keys=True) \
                == json.dumps(second.to_dict(), sort_keys=True), name
