"""Tests for the continuous-batching serving engine."""

import pytest

from repro.eval.serving import compare_with_sequential, run_sequential_baseline
from repro.models.config import GPT2
from repro.models.workload import Workload
from repro.runtime.session import InferenceSession
from repro.serving import (
    SchedulerConfig,
    ServingEngine,
    burst_trace,
    poisson_trace,
    trace_from_specs,
)


class TestCompletion:
    def test_all_requests_complete(self):
        trace = poisson_trace(16, 20.0, seed=3)
        report = ServingEngine(GPT2, num_devices=2).run(trace)
        assert report.completed == 16
        assert report.rejected == 0
        assert report.total_output_tokens == sum(
            t.workload.output_len for t in trace)

    def test_empty_trace(self):
        report = ServingEngine(GPT2).run([])
        assert report.completed == 0
        assert report.aggregate_tokens_per_s == 0.0

    def test_timestamps_are_ordered(self):
        trace = poisson_trace(8, 10.0, seed=1)
        report = ServingEngine(GPT2).run(trace)
        assert report.completed == 8
        # Percentile invariants over the recorded distributions.
        assert report.ttft.p50 <= report.ttft.p95 <= report.ttft.p99
        assert report.e2e_latency.max >= report.e2e_latency.p99

    def test_deterministic_given_seed(self):
        trace = poisson_trace(12, 10.0, seed=7)
        first = ServingEngine(GPT2, num_devices=2).run(trace)
        second = ServingEngine(GPT2, num_devices=2).run(trace)
        assert first.makespan_s == second.makespan_s
        assert first.ttft == second.ttft

    def test_run_is_repeatable_on_one_engine(self):
        """Repeated run() calls on the same engine measure the same system
        (each run starts from a cold, re-packed device)."""
        trace = burst_trace([Workload(8, 4)])
        engine = ServingEngine(GPT2, num_devices=1, cold_start=True)
        first = engine.run(trace)
        second = engine.run(trace)
        assert second.makespan_s == pytest.approx(first.makespan_s)
        assert second.devices[0].packing_s == pytest.approx(
            first.devices[0].packing_s)
        assert second.devices[0].packing_s > 0


class TestSharding:
    def test_round_robin_across_devices(self):
        trace = burst_trace([Workload(8, 4) for _ in range(6)])
        report = ServingEngine(GPT2, num_devices=3).run(trace)
        assert [d.requests_served for d in report.devices] == [2, 2, 2]

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ValueError, match="num_devices"):
            ServingEngine(GPT2, num_devices=0)

    def test_two_devices_faster_than_one(self):
        trace = burst_trace([Workload(32, 32) for _ in range(8)])
        one = ServingEngine(GPT2, num_devices=1).run(trace)
        two = ServingEngine(GPT2, num_devices=2).run(trace)
        assert two.makespan_s < one.makespan_s


class TestAdmissionControl:
    def test_oversized_request_rejected_not_fatal(self):
        trace = trace_from_specs([(0.0, "[8:8]"), (0.1, "[2000:64]"),
                                  (0.2, "[8:8]")])
        report = ServingEngine(GPT2, max_seq_len=128).run(trace)
        assert report.completed == 2
        assert report.rejected == 1

    def test_single_request_matches_inference_session(self):
        """Alone in the system, a request sees exactly the session's timing."""
        workload = Workload(32, 16)
        report = ServingEngine(GPT2, num_devices=1).run(
            burst_trace([workload]))
        expected = InferenceSession(GPT2).generate(workload)
        assert report.e2e_latency.max == pytest.approx(expected.total_seconds)
        assert report.ttft.max == pytest.approx(expected.ttft_s)

    def test_cold_start_charges_packing(self):
        trace = burst_trace([Workload(8, 4)])
        warm = ServingEngine(GPT2, num_devices=1).run(trace)
        cold = ServingEngine(GPT2, num_devices=1, cold_start=True).run(trace)
        # Packing (several seconds) lands on the first request's TTFT.
        assert cold.ttft.max > warm.ttft.max + 1.0
        assert cold.devices[0].packing_s > 0


class TestBatchingAdvantage:
    def test_continuous_batching_beats_sequential_baseline(self):
        trace = poisson_trace(24, 30.0, seed=0)
        report = ServingEngine(
            GPT2, num_devices=1,
            scheduler_config=SchedulerConfig(max_batch_size=8)).run(trace)
        baseline = run_sequential_baseline(GPT2, trace)
        comparison = compare_with_sequential(report, baseline)
        assert comparison.speedup > 1.0

    def test_sparse_traffic_speedup_is_roughly_one(self):
        """When both systems just wait for arrivals, the comparison must
        report parity — not punish the engine for idling."""
        trace = poisson_trace(8, 0.5, seed=0)
        report = ServingEngine(GPT2, num_devices=1).run(trace)
        comparison = compare_with_sequential(
            report, run_sequential_baseline(GPT2, trace))
        assert comparison.speedup == pytest.approx(1.0, rel=0.2)

    def test_queue_builds_up_under_overload(self):
        # Arrivals far faster than service: the admission queue must grow.
        trace = poisson_trace(32, 1000.0, seed=0)
        report = ServingEngine(
            GPT2, num_devices=1,
            scheduler_config=SchedulerConfig(max_batch_size=4)).run(trace)
        assert report.peak_queue_depth > 0
        assert report.completed == 32

    def test_queue_depth_consistent_with_queue_wait(self):
        """If requests measurably waited, the depth timeline must show it
        (mid-step arrivals count as queued, not just the swept waiting set)."""
        trace = poisson_trace(32, 200.0, seed=0)
        report = ServingEngine(
            GPT2, num_devices=1,
            scheduler_config=SchedulerConfig(max_batch_size=2)).run(trace)
        assert report.queue_wait.p50 > 0
        assert report.peak_queue_depth >= 2


class TestStepTimeMemoization:
    """The analytical step-time model is pure in the batch composition,
    so DeviceWorker memoizes it behind a batch-signature LRU.  The cache
    must be a pure speedup: byte-identical reports, bounded size."""

    def run_report(self, cache_size):
        from repro.serving.engine import DeviceWorker

        trace = poisson_trace(48, 120.0, seed=5,
                              input_choices=(32, 64),
                              output_choices=(16, 32))
        saved = DeviceWorker.STEP_TIME_CACHE_SIZE
        DeviceWorker.STEP_TIME_CACHE_SIZE = cache_size
        try:
            return ServingEngine(GPT2, num_devices=1).run(trace)
        finally:
            DeviceWorker.STEP_TIME_CACHE_SIZE = saved

    def test_cache_is_a_pure_speedup(self):
        import json

        cached = self.run_report(512)
        uncached = self.run_report(0)
        assert json.dumps(cached.to_dict(), sort_keys=True) \
            == json.dumps(uncached.to_dict(), sort_keys=True)

    def test_repeated_batch_signatures_hit(self):
        from repro.serving.engine import DeviceWorker
        from repro.serving.policies.preemption import resolve_preemption_policy
        from repro.serving.request import requests_from_trace

        session = InferenceSession(GPT2)
        worker = DeviceWorker(0, session,
                              SchedulerConfig(max_batch_size=1),
                              preemption=resolve_preemption_policy("youngest"))
        # With one batch slot, identical requests run back to back and
        # every step of the second request replays a signature the first
        # one already priced.
        trace = trace_from_specs([(0.0, "[16:32]")] * 4)
        for request in requests_from_trace(trace):
            worker.submit(request)
        worker.run_to_completion()
        assert worker.step_cache_hits > 0
        assert len(worker._step_time_cache) <= worker.STEP_TIME_CACHE_SIZE

    def test_cache_size_zero_disables(self):
        from repro.serving.engine import DeviceWorker
        from repro.serving.request import requests_from_trace

        from repro.serving.policies.preemption import resolve_preemption_policy

        saved = DeviceWorker.STEP_TIME_CACHE_SIZE
        DeviceWorker.STEP_TIME_CACHE_SIZE = 0
        try:
            session = InferenceSession(GPT2)
            worker = DeviceWorker(
                0, session, SchedulerConfig(),
                preemption=resolve_preemption_policy("youngest"))
            for request in requests_from_trace(
                    trace_from_specs([(0.0, "[16:32]")] * 4)):
                worker.submit(request)
            worker.run_to_completion()
            assert worker.step_cache_hits == 0
            assert len(worker._step_time_cache) == 0
        finally:
            DeviceWorker.STEP_TIME_CACHE_SIZE = saved

    def test_lru_evicts_past_capacity(self):
        from repro.serving.engine import DeviceWorker
        from repro.serving.request import requests_from_trace

        from repro.serving.policies.preemption import resolve_preemption_policy

        saved = DeviceWorker.STEP_TIME_CACHE_SIZE
        DeviceWorker.STEP_TIME_CACHE_SIZE = 4
        try:
            session = InferenceSession(GPT2)
            worker = DeviceWorker(
                0, session, SchedulerConfig(),
                preemption=resolve_preemption_policy("youngest"))
            specs = [(0.0, f"[{8 + 8 * i}:4]") for i in range(8)]
            for request in requests_from_trace(trace_from_specs(specs)):
                worker.submit(request)
            worker.run_to_completion()
            assert len(worker._step_time_cache) <= 4
        finally:
            DeviceWorker.STEP_TIME_CACHE_SIZE = saved
