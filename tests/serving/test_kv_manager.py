"""Tests for the block-based KV-cache memory manager."""

import pytest

from repro.resource.memory_alloc import (
    MemoryKind,
    MemoryResource,
    total_capacity_bytes,
)
from repro.serving.kv_manager import (
    KVBlockManager,
    KVCacheConfig,
    KVCacheExhausted,
)


def make_manager(num_blocks: int = 10, block_size: int = 16,
                 high: float = 0.95, low: float = 0.80) -> KVBlockManager:
    """A manager with exactly ``num_blocks`` one-byte-per-token blocks."""
    config = KVCacheConfig(capacity_bytes=float(num_blocks * block_size),
                           block_size=block_size,
                           high_watermark=high, low_watermark=low)
    return config.manager_for(bytes_per_token=1.0)


class TestConfigValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            KVCacheConfig(capacity_bytes=0.0)

    def test_rejects_zero_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            KVCacheConfig(capacity_bytes=1e6, block_size=0)

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError, match="watermarks"):
            KVCacheConfig(capacity_bytes=1e6,
                          high_watermark=0.5, low_watermark=0.9)

    def test_rejects_out_of_range_watermarks(self):
        with pytest.raises(ValueError, match="watermarks"):
            KVCacheConfig(capacity_bytes=1e6, high_watermark=1.5)

    def test_from_capacity_mb(self):
        config = KVCacheConfig.from_capacity_mb(64.0, block_size=32)
        assert config.capacity_bytes == pytest.approx(64e6)
        assert config.capacity_mb == pytest.approx(64.0)
        assert config.block_size == 32

    def test_from_resources_folds_budgets(self):
        resources = [
            MemoryResource(MemoryKind.URAM, block_bits=288 * 1024, num_blocks=100),
            MemoryResource(MemoryKind.BRAM, block_bits=36 * 1024, num_blocks=200),
        ]
        config = KVCacheConfig.from_resources(resources)
        assert config.capacity_bytes == pytest.approx(
            total_capacity_bytes(resources))
        assert config.capacity_bytes == pytest.approx(
            (288 * 1024 * 100 + 36 * 1024 * 200) / 8.0)

    def test_manager_rejects_capacity_below_one_block(self):
        config = KVCacheConfig(capacity_bytes=8.0, block_size=16)
        with pytest.raises(ValueError, match="block"):
            config.manager_for(bytes_per_token=1.0)

    def test_manager_rejects_nonpositive_bytes_per_token(self):
        config = KVCacheConfig(capacity_bytes=1e6)
        with pytest.raises(ValueError, match="bytes_per_token"):
            config.manager_for(bytes_per_token=0.0)


class TestBlockArithmetic:
    def test_num_blocks_floors(self):
        # 100 bytes / (16-token blocks at 1 B/token) -> 6 whole blocks.
        config = KVCacheConfig(capacity_bytes=100.0, block_size=16)
        assert config.manager_for(1.0).num_blocks == 6

    def test_blocks_for_rounds_up(self):
        manager = make_manager(block_size=16)
        assert manager.blocks_for(0) == 0
        assert manager.blocks_for(1) == 1
        assert manager.blocks_for(16) == 1
        assert manager.blocks_for(17) == 2
        assert manager.blocks_for(160) == 10

    def test_bytes_per_token_scales_block_count(self):
        config = KVCacheConfig(capacity_bytes=1000.0, block_size=10)
        assert config.manager_for(1.0).num_blocks == 100
        assert config.manager_for(10.0).num_blocks == 10


class TestClaimRelease:
    def test_claim_and_release_accounting(self):
        manager = make_manager(num_blocks=10)
        manager.claim(1, 3)
        manager.claim(2, 4)
        assert manager.blocks_held(1) == 3
        assert manager.used_blocks == 7
        assert manager.free_blocks == 3
        assert manager.utilization == pytest.approx(0.7)
        assert manager.release(1) == 3
        assert manager.blocks_held(1) == 0
        assert manager.used_blocks == 4

    def test_incremental_claims_accumulate(self):
        manager = make_manager(num_blocks=10)
        manager.claim(7, 2)
        manager.claim(7, 1)
        assert manager.blocks_held(7) == 3

    def test_zero_claim_is_noop(self):
        manager = make_manager(num_blocks=10)
        manager.claim(1, 0)
        assert manager.used_blocks == 0
        assert manager.blocks_held(1) == 0

    def test_negative_claim_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            make_manager().claim(1, -1)

    def test_overclaim_raises_exhausted(self):
        manager = make_manager(num_blocks=4)
        manager.claim(1, 3)
        with pytest.raises(KVCacheExhausted, match="free"):
            manager.claim(2, 2)

    def test_release_unknown_request_frees_nothing(self):
        manager = make_manager()
        assert manager.release(99) == 0
        assert manager.used_blocks == 0

    def test_peak_tracks_claim_time_high_water(self):
        """The peak survives releases — a claim freed within the same step
        must still be visible in the memory metrics."""
        manager = make_manager(num_blocks=10)
        manager.claim(1, 8)
        manager.release(1)
        manager.claim(2, 2)
        assert manager.peak_used_blocks == 8
        assert manager.used_blocks == 2

    def test_reset_clears_everything(self):
        manager = make_manager(num_blocks=10)
        manager.claim(1, 5)
        manager.mark_pressure()
        manager.reset()
        assert manager.used_blocks == 0
        assert manager.peak_used_blocks == 0
        assert manager.free_blocks == 10
        assert not manager.admission_blocked


class TestWatermarkHysteresis:
    def test_within_high_watermark(self):
        manager = make_manager(num_blocks=10, high=0.9)
        manager.claim(1, 5)
        assert manager.within_high_watermark(4)      # 9/10 == high: allowed
        assert not manager.within_high_watermark(5)  # 10/10 > high

    def test_unpressured_pool_never_blocks_admission(self):
        manager = make_manager(num_blocks=10, high=0.9, low=0.5)
        manager.claim(1, 9)
        assert not manager.admission_blocked

    def test_pressure_blocks_until_low_watermark(self):
        manager = make_manager(num_blocks=10, high=0.9, low=0.5)
        manager.claim(1, 9)
        manager.mark_pressure()
        assert manager.admission_blocked          # 0.9 > low
        manager.release(1)
        manager.claim(2, 6)
        assert manager.admission_blocked          # 0.6 > low: still closed
        manager.release(2)
        manager.claim(3, 5)
        assert not manager.admission_blocked      # 0.5 <= low: reopens

    def test_admission_blocked_is_a_pure_read(self):
        """Reading the gate must not consume the pressure flag — planning
        may consult it any number of times without side effects."""
        manager = make_manager(num_blocks=10, high=0.9, low=0.5)
        manager.claim(1, 5)
        manager.mark_pressure()
        assert not manager.admission_blocked      # 0.5 <= low
        manager.claim(1, 4)
        # The flag is still set: without an explicit refresh, climbing back
        # above the low mark re-closes admission.
        assert manager.admission_blocked

    def test_refresh_pressure_acknowledges_recovery(self):
        """The engine's step-boundary refresh retires the pressure episode
        once utilisation is back at the low mark, so a later climb (short
        of the high mark) does not re-close admission."""
        manager = make_manager(num_blocks=10, high=0.9, low=0.5)
        manager.claim(1, 9)
        manager.mark_pressure()
        manager.refresh_pressure()
        assert manager.admission_blocked          # no recovery yet
        manager.release(1)
        manager.claim(2, 5)
        manager.refresh_pressure()                # recovered: episode over
        manager.claim(2, 4)
        assert not manager.admission_blocked      # stays open at 0.9


class TestExportImport:
    """The disaggregation hand-off surface: blocks leave the prefill pool
    and land in the decode pool, tallied as migration traffic."""

    def test_export_releases_and_receipts(self):
        manager = make_manager()
        manager.claim(7, 3)
        receipt = manager.export(7, kv_tokens=33)
        assert receipt.request_id == 7
        assert receipt.kv_tokens == 33
        assert receipt.blocks_freed == 3
        assert manager.used_blocks == 0
        assert manager.kv_exports == 1
        assert manager.blocks_exported == 3

    def test_export_of_unknown_request_frees_nothing(self):
        manager = make_manager()
        receipt = manager.export(99, kv_tokens=0)
        assert receipt.blocks_freed == 0
        assert manager.kv_exports == 1

    def test_export_rejects_negative_tokens(self):
        manager = make_manager()
        with pytest.raises(ValueError, match="negative"):
            manager.export(1, kv_tokens=-1)

    def test_import_claims_and_counts(self):
        manager = make_manager()
        manager.import_kv(3, 4)
        assert manager.blocks_held(3) == 4
        assert manager.used_blocks == 4
        assert manager.kv_imports == 1
        assert manager.blocks_imported == 4

    def test_import_respects_capacity(self):
        manager = make_manager(num_blocks=4)
        with pytest.raises(KVCacheExhausted):
            manager.import_kv(1, 5)

    def test_reset_clears_handoff_counters(self):
        manager = make_manager()
        manager.claim(1, 2)
        manager.export(1, kv_tokens=32)
        manager.import_kv(2, 1)
        manager.reset()
        assert manager.kv_exports == 0
        assert manager.kv_imports == 0
        assert manager.blocks_exported == 0
        assert manager.blocks_imported == 0
