"""Tests for DMA/converter materialisation and converter CSE."""

import pytest

from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import fuse_kernels
from repro.dataflow.materialize import (
    materialize,
    materialize_converter,
    materialize_dma,
    remove_redundant_converters,
)
from repro.dataflow.structure import EdgeKind, TaskKind
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


def fused_matmul_chain():
    builder = GraphBuilder("net")
    x = builder.input((64, 64), INT8)
    w1 = builder.weight((64, 64), INT8)
    w2 = builder.weight((64, 64), INT8)
    y = builder.matmul(x, w1, name="mm1")
    z = builder.matmul(y, w2, name="mm2")
    builder.output(z)
    dataflow = convert_to_dataflow(builder.build())
    fuse_kernels(dataflow, c_max=1e12)
    return dataflow


class TestMaterialize:
    def test_memory_edges_get_dma_tasks(self):
        dataflow = fused_matmul_chain()
        materialize(dataflow)
        kinds = [t.kind for t in dataflow.attributes["materialized_tasks"]]
        assert TaskKind.DMA_LOAD in kinds
        assert TaskKind.DMA_STORE in kinds

    def test_mismatched_stream_edge_gets_converter_task(self):
        dataflow = fused_matmul_chain()
        materialize(dataflow)
        tasks = dataflow.attributes["materialized_tasks"]
        converters = [t for t in tasks if t.kind is TaskKind.CONVERTER]
        stream_mismatches = [e for e in dataflow.stream_edges() if e.needs_converter]
        assert len(converters) == len(stream_mismatches)

    def test_dma_tasks_attached_to_owning_kernels(self):
        dataflow = fused_matmul_chain()
        materialize(dataflow)
        mm1 = dataflow.kernel_by_name("mm1")
        assert any(t.kind is TaskKind.DMA_LOAD for t in mm1.tasks)

    def test_converter_task_carries_algorithm1_buffer(self):
        dataflow = fused_matmul_chain()
        materialize(dataflow)
        for edge in dataflow.stream_edges():
            if edge.converter is None:
                continue
            task = next(t for t in edge.producer.tasks
                        if t.kind is TaskKind.CONVERTER
                        and t.attributes["edge_uid"] == edge.uid)
            assert task.buffer.shape == edge.converter.buf_shape
            assert task.attributes["reuse_factor"] == edge.converter.reuse_factor


class TestMaterializeHelpers:
    def test_materialize_dma_direction_validation(self):
        dataflow = fused_matmul_chain()
        edge = dataflow.memory_edges()[0]
        with pytest.raises(ValueError):
            materialize_dma(edge, "sideways")

    def test_dma_load_and_store_types(self):
        dataflow = fused_matmul_chain()
        edge = next(e for e in dataflow.memory_edges() if e.consumer is not None)
        load = materialize_dma(edge, "load")
        assert load.kind is TaskKind.DMA_LOAD
        assert load.output_types and not load.input_types

    def test_materialize_converter_requires_types(self):
        dataflow = fused_matmul_chain()
        edge = dataflow.external_input_edges()[0]
        with pytest.raises(ValueError):
            materialize_converter(edge)


class TestConverterCse:
    def test_shared_consumers_deduplicate_converters(self):
        builder = GraphBuilder()
        x = builder.input((64, 64), INT8)
        w = builder.weight((64, 64), INT8)
        y = builder.matmul(x, w, name="producer")
        a = builder.matmul(y, w, name="consumer_a")
        b = builder.matmul(y, w, name="consumer_b")
        builder.output(builder.add(a, b))
        dataflow = convert_to_dataflow(builder.build())
        fuse_kernels(dataflow, c_max=1e12)
        removed = remove_redundant_converters(dataflow)
        assert removed == 1

    def test_no_duplicates_nothing_removed(self):
        dataflow = fused_matmul_chain()
        assert remove_redundant_converters(dataflow) == 0
