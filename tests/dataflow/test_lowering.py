"""Tests for itensor folding, vectorisation, packing and bufferization."""

import math

import pytest

from repro.dataflow.bufferize import DEFAULT_FIFO_DEPTH, bufferize, fifo_for_edge
from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.folding import fold_itensors
from repro.dataflow.fusion import fuse_kernels
from repro.dataflow.materialize import materialize
from repro.dataflow.packing import (
    PackedLayout,
    pack_interface,
    pack_kernel_interfaces,
    widen_for_bus,
)
from repro.dataflow.structure import TaskKind
from repro.dataflow.vectorize import choose_vector_shape, vectorize_graph, vectorize_itensor
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8, UINT8
from repro.ir.types import TensorType
from repro.itensor.itensor_type import itensor_from_tiling


def compiled_chain():
    builder = GraphBuilder("net")
    x = builder.input((64, 64), INT8)
    w = builder.weight((64, 64), INT8)
    y = builder.matmul(x, w, name="mm")
    z = builder.gelu(y, name="act")
    builder.output(z)
    dataflow = convert_to_dataflow(builder.build())
    fuse_kernels(dataflow, c_max=1e12)
    materialize(dataflow)
    return dataflow


class TestFolding:
    def test_matching_dma_load_is_folded(self):
        dataflow = compiled_chain()
        result = fold_itensors(dataflow)
        assert result.folded_edges >= 1
        assert result.buffer_bytes_saved > 0

    def test_parameter_dmas_are_not_folded(self):
        dataflow = compiled_chain()
        fold_itensors(dataflow)
        for kernel in dataflow.kernels:
            for task in kernel.tasks:
                if task.attributes.get("is_parameter"):
                    assert not task.attributes.get("folded")

    def test_folded_tasks_lose_their_buffer(self):
        dataflow = compiled_chain()
        result = fold_itensors(dataflow)
        for kernel in dataflow.kernels:
            for task in kernel.tasks:
                if task.name in result.folded_task_names:
                    assert task.buffer is None


class TestVectorization:
    def test_choose_vector_shape_divides_element(self):
        itype = itensor_from_tiling(TensorType((64, 64), INT8), (16, 16))
        shape = choose_vector_shape(itype, 8)
        assert all(e % v == 0 for e, v in zip(itype.element_shape, shape))
        assert math.prod(shape) <= 16 * 16

    def test_vectorize_itensor_attaches_shape(self):
        itype = itensor_from_tiling(TensorType((64, 64), INT8), (16, 16))
        assert vectorize_itensor(itype, 8).vector_shape is not None

    def test_width_one_means_scalar_vector(self):
        itype = itensor_from_tiling(TensorType((64, 64), INT8), (16, 16))
        assert choose_vector_shape(itype, 1) == (1, 1)

    def test_vectorize_graph_updates_stream_edges(self):
        dataflow = compiled_chain()
        result = vectorize_graph(dataflow, default_width=8)
        assert result.vectorized_edges == len(dataflow.stream_edges())
        for edge in dataflow.stream_edges():
            assert edge.producer_type.vector_shape is not None
            assert edge.consumer_type.vector_shape is not None


class TestPacking:
    def test_widen_fills_bus(self):
        vector = widen_for_bus((16, 16), UINT8, bus_bits=512)
        assert math.prod(vector) == 64

    def test_widen_never_exceeds_tile(self):
        vector = widen_for_bus((2, 2), UINT8, bus_bits=512)
        assert math.prod(vector) <= 4

    def test_pack_interface_shapes(self):
        """The paper's example: 64x64 with 16x16 tiles packs to 4x4x16x16 and
        widens to 4x4x2x2 vectors of 8x8 elements (512-bit bus, 8-bit data)."""
        tensor = TensorType((64, 64), UINT8)
        itype = itensor_from_tiling(tensor, (16, 16))
        layout = pack_interface(tensor, itype, bus_bits=512)
        assert layout.packed_shape() == (4, 4, 16, 16)
        assert layout.vector_shape == (8, 8)
        assert layout.widened_shape() == (4, 4, 2, 2)
        assert layout.vector_bits == 512

    def test_pack_kernel_interfaces_marks_parameters_static(self):
        dataflow = compiled_chain()
        result = pack_kernel_interfaces(dataflow)
        assert result.interfaces == len(dataflow.memory_edges())
        assert result.parameter_interfaces >= 1
        # Only dynamic tensors contribute to runtime packing cost.
        total = sum(layout.total_bytes for layout in result.layouts)
        assert result.runtime_pack_bytes < total


class TestBufferize:
    def test_stream_edges_become_fifos(self):
        dataflow = compiled_chain()
        result = bufferize(dataflow)
        assert len(result.fifos) == len(dataflow.stream_edges())
        for edge in dataflow.stream_edges():
            fifo = fifo_for_edge(dataflow, edge.uid)
            assert fifo is not None
            assert fifo.depth == (edge.fifo_depth or DEFAULT_FIFO_DEPTH)

    def test_buffers_collected_from_tasks(self):
        dataflow = compiled_chain()
        result = bufferize(dataflow)
        assert result.total_buffer_bytes > 0
        assert result.total_bytes == (result.total_fifo_bytes
                                      + result.total_buffer_bytes)

    def test_fifo_for_unknown_edge_is_none(self):
        dataflow = compiled_chain()
        bufferize(dataflow)
        assert fifo_for_edge(dataflow, -1) is None
