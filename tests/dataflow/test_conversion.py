"""Tests for Linalg-to-dataflow conversion."""

import pytest

from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.structure import EdgeKind
from repro.dataflow.tiling import TilingConfig
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


def small_graph():
    builder = GraphBuilder("net")
    x = builder.input((64, 64), INT8)
    w1 = builder.weight((64, 64), INT8)
    w2 = builder.weight((64, 64), INT8)
    h = builder.matmul(x, w1, name="mm1")
    h = builder.gelu(h, name="act")
    y = builder.matmul(h, w2, name="mm2")
    builder.output(y)
    return builder.build()


class TestConversion:
    def test_constant_ops_become_parameter_edges_not_kernels(self):
        dataflow = convert_to_dataflow(small_graph())
        assert {k.name for k in dataflow.kernels} == {"mm1", "act", "mm2"}
        param_edges = [e for e in dataflow.edges if e.is_parameter]
        assert len(param_edges) == 2
        assert all(e.producer is None for e in param_edges)

    def test_all_edges_start_as_memory(self):
        dataflow = convert_to_dataflow(small_graph())
        assert all(e.kind is EdgeKind.MEMORY for e in dataflow.edges)

    def test_internal_edges_carry_both_endpoint_types(self):
        dataflow = convert_to_dataflow(small_graph())
        for edge in dataflow.internal_edges():
            assert edge.producer_type is not None
            assert edge.consumer_type is not None
            assert (edge.producer_type.tensor_shape()
                    == edge.consumer_type.tensor_shape())

    def test_graph_output_becomes_external_edge(self):
        dataflow = convert_to_dataflow(small_graph())
        outs = dataflow.external_output_edges()
        assert len(outs) == 1
        assert outs[0].producer.name == "mm2"

    def test_each_kernel_gets_a_compute_task(self):
        dataflow = convert_to_dataflow(small_graph())
        for kernel in dataflow.kernels:
            assert len(kernel.tasks) == 1
            assert kernel.tasks[0].kind.value == "compute"

    def test_custom_tiling_config_respected(self):
        configs = {"mm1": TilingConfig([32, 32, 32], unroll_factor=64)}
        dataflow = convert_to_dataflow(small_graph(), configs)
        mm1 = dataflow.kernel_by_name("mm1")
        assert mm1.attributes["unroll_factor"] == 64
        assert mm1.outputs[0].itensor.element_shape == (32, 32)

    def test_topological_order_respects_dependencies(self):
        dataflow = convert_to_dataflow(small_graph())
        order = [k.name for k in dataflow.topological_order()]
        assert order.index("mm1") < order.index("act") < order.index("mm2")

    def test_gpt2_block_converts(self, gpt2_decode_graph):
        dataflow = convert_to_dataflow(gpt2_decode_graph)
        dataflow.verify()
        assert len(dataflow.kernels) >= 10
        assert len(dataflow.external_input_edges()) >= 3
