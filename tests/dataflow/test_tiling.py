"""Tests for Linalg tiling and itensor type inference (Section 4.1)."""

import pytest

from repro.dataflow.tiling import (
    TilingConfig,
    _largest_divisor,
    default_tiling,
    tile_graph,
    tile_op,
)
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.ir.ops import make_elementwise, make_matmul, Value
from repro.ir.types import TensorType


def matmul_op(m=64, k=64, n=64):
    a = Value(TensorType((m, k), INT8))
    b = Value(TensorType((k, n), INT8))
    return make_matmul(a, b)


class TestLargestDivisor:
    @pytest.mark.parametrize("bound,limit,expected", [
        (64, 16, 16), (64, 17, 16), (10, 3, 2), (7, 4, 1), (8, 100, 8),
    ])
    def test_values(self, bound, limit, expected):
        assert _largest_divisor(bound, limit) == expected


class TestTilingConfig:
    def test_normalized_clamps_and_snaps(self):
        op = matmul_op(64, 48, 64)
        config = TilingConfig([100, 100, 20]).normalized(op)
        assert config.tile_sizes == [64, 64, 16]

    def test_normalized_extends_short_tile_list(self):
        op = matmul_op()
        config = TilingConfig([8]).normalized(op)
        assert len(config.tile_sizes) == 3

    def test_invalid_permutation_rejected(self):
        op = matmul_op()
        with pytest.raises(ValueError):
            TilingConfig([16, 16, 16], permutation=[0, 0, 1]).normalized(op)


class TestTileOpMatmul:
    def test_loop_structure(self):
        info = tile_op(matmul_op(), TilingConfig([16, 16, 16]))
        assert info.loop_tripcounts == [4, 4, 4]
        assert info.loop_steps == [16, 16, 16]
        assert info.total_tiles == 64

    def test_input_itensor_reaccesses_over_missing_dims(self):
        info = tile_op(matmul_op(), TilingConfig([16, 16, 16]))
        a_type = info.input_itensors[0]
        # A[m, k] is re-read for every n tile.
        assert a_type.num_iterations == 64
        assert a_type.reaccess_factor() == 4
        assert a_type.element_shape == (16, 16)

    def test_result_itensor_drops_reduction_loops(self):
        info = tile_op(matmul_op(), TilingConfig([16, 16, 16]))
        out = info.result_itensor
        assert out.num_iterations == 16  # only the 4x4 parallel tiles
        assert out.tensor_shape() == (64, 64)

    def test_permutation_changes_stream_order(self):
        row_major = tile_op(matmul_op(), TilingConfig([16, 16, 16],
                                                      permutation=[0, 1, 2]))
        col_major = tile_op(matmul_op(), TilingConfig([16, 16, 16],
                                                      permutation=[1, 0, 2]))
        assert (row_major.result_itensor.stream_order_list(3)
                != col_major.result_itensor.stream_order_list(3))

    def test_tile_iterations(self):
        info = tile_op(matmul_op(), TilingConfig([16, 8, 32]))
        assert info.tile_iterations == 16 * 8 * 32


class TestTileOpElementwise:
    def test_elementwise_types_match_producer_layout(self):
        x = Value(TensorType((64, 64), INT8))
        op = make_elementwise("gelu", [x])
        info = tile_op(op, TilingConfig([16, 16]))
        assert info.result_itensor.num_iterations == 16
        assert info.input_itensors[0].matches(info.result_itensor)


class TestDefaults:
    def test_default_tiling_uses_hyperparameter(self):
        config = default_tiling(matmul_op(), default_tile_size=32)
        assert config.tile_sizes == [32, 32, 32]

    def test_tile_graph_covers_all_ops(self):
        builder = GraphBuilder()
        x = builder.input((64, 64), INT8)
        w = builder.weight((64, 64), INT8)
        builder.output(builder.gelu(builder.matmul(x, w)))
        graph = builder.build()
        ops = [op for op in graph.ops if not op.is_constant]
        tiled = tile_graph(ops, {})
        assert set(tiled) == {op.name for op in ops}

    def test_tiles_larger_than_bounds_clamp(self):
        info = tile_op(matmul_op(8, 8, 8), TilingConfig([64, 64, 64]))
        assert info.loop_tripcounts == [1, 1, 1]
        assert info.result_itensor.num_iterations == 1
