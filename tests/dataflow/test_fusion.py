"""Tests for stream-based kernel fusion (Algorithm 2)."""

import pytest

from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import (
    apply_fusion,
    edge_fusion_cost,
    explore_fusion,
    fuse_kernels,
    fusion_memory_report,
)
from repro.dataflow.structure import EdgeKind
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8


def chain_graph(num_ops=4, size=64):
    builder = GraphBuilder("chain")
    value = builder.input((size, size), INT8)
    for index in range(num_ops):
        value = builder.gelu(value, name=f"op{index}")
    builder.output(value)
    return builder.build()


class TestExploreFusion:
    def test_unlimited_budget_fuses_everything(self):
        dataflow = convert_to_dataflow(chain_graph())
        plan = explore_fusion(dataflow, c_max=1e12)
        assert plan.num_groups == 1

    def test_zero_budget_keeps_kernels_separate(self):
        builder = GraphBuilder()
        x = builder.input((64, 64), INT8)
        w = builder.weight((64, 64), INT8)
        y = builder.matmul(x, w)          # output layout row-major tiles
        z = builder.matmul(y, w)          # consumer re-reads -> converter cost
        builder.output(z)
        dataflow = convert_to_dataflow(builder.build())
        plan = explore_fusion(dataflow, c_max=0.0)
        # Fusion costs (converter + FIFO) exceed 0, so every kernel is alone.
        assert plan.num_groups == 2

    def test_sentinel_group_zero_stays_empty(self):
        dataflow = convert_to_dataflow(chain_graph())
        plan = explore_fusion(dataflow, c_max=1e12)
        assert plan.groups[0] == set()

    def test_costs_tracked_per_group(self):
        dataflow = convert_to_dataflow(chain_graph())
        plan = explore_fusion(dataflow, c_max=1e12)
        assert plan.total_cost() >= 0.0
        assert len(plan.costs) == len(plan.groups)

    def test_group_of_unknown_kernel_raises(self):
        dataflow = convert_to_dataflow(chain_graph())
        plan = explore_fusion(dataflow, c_max=1e12)
        with pytest.raises(KeyError):
            plan.group_of("nonexistent")


class TestApplyFusion:
    def test_same_group_edges_become_streams(self):
        dataflow = convert_to_dataflow(chain_graph())
        plan = fuse_kernels(dataflow, c_max=1e12)
        assert plan.num_groups == 1
        internal = dataflow.internal_edges()
        assert internal and all(e.kind is EdgeKind.STREAM for e in internal)

    def test_cross_group_edges_stay_in_memory(self):
        dataflow = convert_to_dataflow(chain_graph())
        fuse_kernels(dataflow, c_max=0.0)
        assert all(e.kind is EdgeKind.MEMORY for e in dataflow.internal_edges())

    def test_converters_only_where_needed(self):
        dataflow = convert_to_dataflow(chain_graph())
        fuse_kernels(dataflow, c_max=1e12)
        for edge in dataflow.stream_edges():
            if edge.needs_converter:
                assert edge.converter is not None
            else:
                assert edge.converter is None

    def test_elementwise_chain_needs_no_converters(self):
        dataflow = convert_to_dataflow(chain_graph())
        fuse_kernels(dataflow, c_max=1e12)
        assert dataflow.converter_bytes() == 0.0

    def test_fusion_indices_written_to_kernels(self):
        dataflow = convert_to_dataflow(chain_graph())
        plan = fuse_kernels(dataflow, c_max=1e12)
        for kernel in dataflow.kernels:
            assert kernel.fusion_index == plan.group_of(kernel.name)


class TestEdgeFusionCost:
    def test_parameter_like_edges_cost_zero(self):
        dataflow = convert_to_dataflow(chain_graph())
        external = dataflow.external_input_edges()[0]
        assert edge_fusion_cost(external) == 0.0

    def test_compatible_edge_cost_is_fifo_only(self):
        dataflow = convert_to_dataflow(chain_graph())
        edge = dataflow.internal_edges()[0]
        cost = edge_fusion_cost(edge, fifo_depth_estimate=2)
        assert cost == pytest.approx(2 * edge.producer_type.element_bytes)


class TestMemoryReport:
    def test_fusion_reduces_intermediate_memory(self, gpt2_prefill_graph):
        from repro.dse import build_tiling_space
        space = build_tiling_space(gpt2_prefill_graph, 16, 128)
        dataflow = convert_to_dataflow(gpt2_prefill_graph, space.to_configs())
        fuse_kernels(dataflow, c_max=41e6)
        report = fusion_memory_report(dataflow)
        assert report["fused_bytes"] < report["original_bytes"]
        assert 0.0 < report["ratio"] < 0.6

    def test_gpt2_block_fuses_into_single_group(self, gpt2_prefill_graph):
        """The paper fuses an entire transformer block onto one FPGA."""
        from repro.dse import build_tiling_space
        space = build_tiling_space(gpt2_prefill_graph, 16, 128)
        dataflow = convert_to_dataflow(gpt2_prefill_graph, space.to_configs())
        plan = fuse_kernels(dataflow, c_max=41e6)
        assert plan.num_groups == 1
