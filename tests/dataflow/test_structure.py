"""Tests for the dataflow structure IR (kernels, edges, graphs)."""

import pytest

from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import fuse_kernels
from repro.dataflow.structure import (
    DataflowEdge,
    DataflowGraph,
    DataflowKernel,
    DataflowTask,
    EdgeKind,
    Port,
    TaskKind,
)
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.ir.types import TensorType
from repro.itensor.itensor_type import itensor_from_tiling
from repro.itensor.stream_type import BufferType


def make_kernel(name):
    return DataflowKernel(name=name, source_op=None)


def make_edge(producer, consumer, shape=(16, 16)):
    tensor = TensorType(shape, INT8)
    itype = itensor_from_tiling(tensor, (4, 4))
    return DataflowEdge(
        producer=producer, producer_port="out0",
        consumer=consumer, consumer_port="in0",
        producer_type=itype, consumer_type=itype, tensor=tensor,
    )


class TestGraphQueries:
    def test_predecessors_and_successors(self):
        graph = DataflowGraph()
        a, b = graph.add_kernel(make_kernel("a")), graph.add_kernel(make_kernel("b"))
        graph.add_edge(make_edge(a, b))
        assert graph.predecessors(b) == [a]
        assert graph.successors(a) == [b]

    def test_kernel_by_name_missing_raises(self):
        with pytest.raises(KeyError):
            DataflowGraph().kernel_by_name("x")

    def test_duplicate_kernel_names_rejected(self):
        graph = DataflowGraph()
        graph.add_kernel(make_kernel("a"))
        graph.add_kernel(make_kernel("a"))
        with pytest.raises(ValueError, match="duplicate"):
            graph.verify()

    def test_cycle_detection(self):
        graph = DataflowGraph()
        a, b = graph.add_kernel(make_kernel("a")), graph.add_kernel(make_kernel("b"))
        graph.add_edge(make_edge(a, b))
        graph.add_edge(make_edge(b, a))
        with pytest.raises(ValueError, match="cycle"):
            graph.topological_order()

    def test_edge_referencing_foreign_kernel_rejected(self):
        graph = DataflowGraph()
        a = graph.add_kernel(make_kernel("a"))
        foreign = make_kernel("foreign")
        graph.add_edge(make_edge(a, foreign))
        with pytest.raises(ValueError, match="not in the graph"):
            graph.verify()

    def test_fusion_groups(self):
        graph = DataflowGraph()
        a, b = graph.add_kernel(make_kernel("a")), graph.add_kernel(make_kernel("b"))
        a.fusion_index, b.fusion_index = 1, 2
        groups = graph.fusion_groups()
        assert groups[1] == [a] and groups[2] == [b]


class TestEdgeProperties:
    def test_token_count_from_itensor(self):
        edge = make_edge(make_kernel("a"), make_kernel("b"))
        assert edge.token_count == 16

    def test_stream_type_defaults_to_depth_2(self):
        edge = make_edge(make_kernel("a"), make_kernel("b"))
        assert edge.stream_type().depth == 2
        edge.fifo_depth = 7
        assert edge.stream_type().depth == 7

    def test_needs_converter_false_for_matching_types(self):
        edge = make_edge(make_kernel("a"), make_kernel("b"))
        assert not edge.needs_converter

    def test_external_edges(self):
        edge = DataflowEdge(producer=None, producer_port=None,
                            consumer=make_kernel("a"), consumer_port="in0",
                            producer_type=None,
                            consumer_type=itensor_from_tiling(
                                TensorType((8, 8), INT8), (4, 4)),
                            tensor=TensorType((8, 8), INT8))
        assert edge.is_external_input and not edge.is_external_output
        assert edge.name() == "host->a"


class TestKernelAndTask:
    def test_port_lookup(self):
        kernel = make_kernel("k")
        itype = itensor_from_tiling(TensorType((8, 8), INT8), (4, 4))
        kernel.inputs.append(Port("in0", itype, TensorType((8, 8), INT8)))
        assert kernel.input_port("in0").name == "in0"
        with pytest.raises(KeyError):
            kernel.input_port("nope")
        with pytest.raises(KeyError):
            kernel.output_port("nope")

    def test_local_buffer_bytes_sums_tasks(self):
        kernel = make_kernel("k")
        kernel.tasks.append(DataflowTask("t0", TaskKind.CONVERTER,
                                         buffer=BufferType((4, 4), INT8)))
        kernel.tasks.append(DataflowTask("t1", TaskKind.COMPUTE))
        assert kernel.local_buffer_bytes() == 32.0


class TestMemoryAccounting:
    def test_unfused_counts_double_buffered_tensors(self):
        builder = GraphBuilder()
        x = builder.input((64, 64), INT8)
        builder.output(builder.gelu(builder.gelu(x, name="g0"), name="g1"))
        dataflow = convert_to_dataflow(builder.build())
        assert dataflow.intermediate_bytes_unfused() == 2 * 64 * 64

    def test_fused_counts_only_stream_edges(self):
        builder = GraphBuilder()
        x = builder.input((64, 64), INT8)
        builder.output(builder.gelu(builder.gelu(x, name="g0"), name="g1"))
        dataflow = convert_to_dataflow(builder.build())
        assert dataflow.intermediate_bytes_fused() == 0.0
        fuse_kernels(dataflow, c_max=1e9)
        assert dataflow.intermediate_bytes_fused() > 0.0
        assert (dataflow.intermediate_bytes_fused()
                < dataflow.intermediate_bytes_unfused())
