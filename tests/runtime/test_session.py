"""Tests for the host-runtime inference session."""

import pytest

from repro.eval.latency import FpgaPerformanceModel
from repro.models.config import GPT2, LLAMA, QWEN
from repro.models.workload import Workload
from repro.resource.token_model import EqualizationStrategy
from repro.runtime.session import InferenceSession, StepWork


class TestGeneration:
    def test_step_structure(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(32, 16))
        assert result.steps[0].kind == "prefill"
        assert result.steps[0].tokens == 32
        decode_steps = [s for s in result.steps if s.kind == "decode"]
        assert len(decode_steps) == 15
        assert all(step.tokens == 1 for step in decode_steps)

    def test_kv_cache_grows_monotonically(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(16, 8))
        kv_lengths = [step.kv_len for step in result.steps]
        assert kv_lengths == sorted(kv_lengths)
        assert kv_lengths[-1] == 16 + 7

    def test_ttft_and_totals(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(64, 32))
        assert result.ttft_s == result.steps[0].seconds
        assert result.total_seconds == pytest.approx(
            result.ttft_s + result.decode_seconds)
        assert result.decode_tokens_per_second > 0

    def test_matches_latency_model(self):
        """The session is the stepwise view of the Table 4 latency model."""
        session = InferenceSession(GPT2)
        workload = Workload(32, 32)
        result = session.generate(workload)
        breakdown = FpgaPerformanceModel().evaluate(GPT2, workload)
        assert result.ttft_s == pytest.approx(breakdown.ttft_s)
        assert result.decode_seconds == pytest.approx(breakdown.decode_time_s)

    def test_kernel_invocations_counted_per_layer(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(8, 4))
        assert result.total_kernel_invocations == GPT2.num_layers * len(result.steps)

    def test_per_token_latencies(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(8, 4))
        latencies = result.per_token_latencies_ms()
        assert len(latencies) == len(result.steps)
        assert latencies[0] > latencies[1]  # prefill slower than one decode step

    def test_kv_cache_bytes_accounted(self):
        session = InferenceSession(QWEN)
        result = session.generate(Workload(32, 32))
        assert result.kv_cache_bytes == pytest.approx(
            64 * QWEN.kv_cache_bytes_per_token(1.0))


class TestSessionPolicies:
    def test_max_seq_len_enforced(self):
        session = InferenceSession(GPT2, max_seq_len=64)
        with pytest.raises(ValueError, match="max_seq_len"):
            session.generate(Workload(64, 32))

    def test_parameters_packed_once(self):
        session = InferenceSession(GPT2)
        first = session.pack_parameters()
        second = session.pack_parameters()
        assert first > 0 and second == 0.0

    def test_throughput_sweep_packs_once(self):
        session = InferenceSession(GPT2)
        results = session.throughput_sweep([Workload(8, 4), Workload(8, 4)])
        assert results[0].packing_seconds > 0
        assert results[1].packing_seconds == 0.0

    def test_strategy_from_compiled_design(self, gpt2_compiled):
        session = InferenceSession(GPT2, compiled=gpt2_compiled)
        assert session.strategy is EqualizationStrategy.NORMAL

    def test_conservative_strategy_slows_generation(self):
        fast = InferenceSession(LLAMA)
        slow = InferenceSession(LLAMA)
        slow.strategy = EqualizationStrategy.CONSERVATIVE
        workload = Workload(32, 16)
        assert slow.generate(workload).total_seconds \
            > fast.generate(workload).total_seconds

    def test_packing_cost_charged_to_first_request_only(self):
        """generate() reports the one-time packing cost exactly once."""
        session = InferenceSession(GPT2)
        first = session.generate(Workload(8, 4))
        second = session.generate(Workload(8, 4))
        assert first.packing_seconds > 0
        assert second.packing_seconds == 0.0

    def test_reset_repacks(self):
        session = InferenceSession(GPT2)
        initial = session.pack_parameters()
        session.reset()
        assert session.pack_parameters() == pytest.approx(initial)
        assert session.pack_parameters() == 0.0

    def test_reset_restores_generate_packing_cost(self):
        session = InferenceSession(GPT2)
        first = session.generate(Workload(8, 4))
        session.reset()
        again = session.generate(Workload(8, 4))
        assert again.packing_seconds == pytest.approx(first.packing_seconds)


class TestEmptyDecodeWorkloads:
    """output_len=1: the only output token comes out of the prefill pass."""

    def test_single_prefill_step(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(32, 1))
        assert len(result.steps) == 1
        assert result.steps[0].kind == "prefill"
        assert result.decode_seconds == 0.0
        assert result.decode_tokens_per_second == 0.0
        assert result.total_seconds == result.ttft_s

    def test_throughput_sweep_with_empty_decodes(self):
        session = InferenceSession(GPT2)
        results = session.throughput_sweep([Workload(8, 1), Workload(8, 1)])
        assert all(len(r.steps) == 1 for r in results)


class TestStepGranularApi:
    def test_start_request_rejects_oversized(self):
        session = InferenceSession(GPT2, max_seq_len=64)
        with pytest.raises(ValueError, match="max_seq_len"):
            session.start_request(Workload(64, 32))

    def test_work_sequence(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(16, 3))
        first = active.next_work()
        assert first == StepWork("prefill", 16, 16)
        assert active.record(first, 0.1) == 1  # prefill emits the first token
        second = active.next_work()
        assert second == StepWork("decode", 1, 17)
        assert active.record(second, 0.01) == 1
        third = active.next_work()
        assert third == StepWork("decode", 1, 18)
        active.record(third, 0.01)
        assert active.finished
        with pytest.raises(RuntimeError, match="finished"):
            active.next_work()

    def test_chunked_prefill_emits_token_only_at_the_end(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(40, 2))
        chunk = active.next_work(token_budget=16)
        assert chunk == StepWork("prefill", 16, 16, emits=False)
        assert active.record(chunk, 0.1) == 0
        chunk = active.next_work(token_budget=16)
        assert chunk == StepWork("prefill", 16, 32, emits=False)
        assert active.record(chunk, 0.1) == 0
        chunk = active.next_work(token_budget=16)
        assert chunk == StepWork("prefill", 8, 40, emits=True)
        assert active.record(chunk, 0.1) == 1
        assert active.tokens_generated == 1
        assert not active.finished

    def test_mid_prompt_chunks_skip_lm_head_cost(self):
        """The sum of chunked-prefill steps charges the LM head once, at
        the final chunk, not once per chunk."""
        session = InferenceSession(GPT2)
        silent = session.execute_step(
            [StepWork("prefill", 16, 32, emits=False)])
        final = session.execute_step(
            [StepWork("prefill", 16, 32, emits=True)])
        head = FpgaPerformanceModel().lm_head_time_s(GPT2)
        assert final - silent == pytest.approx(head)

    def test_step_records_accumulate(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(8, 3))
        while not active.finished:
            work = active.next_work()
            active.record(work, session.execute_step([work]))
        assert [s.kind for s in active.steps] == ["prefill", "decode", "decode"]
        assert [s.index for s in active.steps] == [0, 1, 2]

    def test_execute_step_empty_batch_is_free(self):
        assert InferenceSession(GPT2).execute_step([]) == 0.0

    def test_execute_step_validates_kv_len(self):
        session = InferenceSession(GPT2, max_seq_len=64)
        with pytest.raises(ValueError, match="max_seq_len"):
            session.execute_step([StepWork("decode", 1, 65)])

    def test_singleton_step_matches_latency_model(self):
        session = InferenceSession(GPT2)
        model = FpgaPerformanceModel()
        prefill = session.execute_step([StepWork("prefill", 32, 32)])
        assert prefill == pytest.approx(
            model.prefill_time_s(GPT2, 32, EqualizationStrategy.NORMAL))
        decode = session.execute_step([StepWork("decode", 1, 33)])
        assert decode == pytest.approx(
            model.decode_step_time_s(GPT2, 33, EqualizationStrategy.NORMAL))

    def test_batched_decode_amortises_weight_streaming(self):
        """8 decode slices in one step cost far less than 8 separate steps."""
        session = InferenceSession(GPT2)
        works = [StepWork("decode", 1, 64 + i) for i in range(8)]
        batched = session.execute_step(works)
        sequential = sum(session.execute_step([w]) for w in works)
        assert batched < sequential / 2
        # ... but a batch is never cheaper than its slowest member alone.
        assert batched >= max(session.execute_step([w]) for w in works)


class TestAssumeResident:
    """Imported-KV cursors (the decode half of a disaggregated hand-off)."""

    def test_full_prompt_resident_goes_straight_to_decode(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(16, 4))
        assert active.assume_resident(16) == 16
        assert not active.in_prefill
        assert active.kv_tokens == 16
        work = active.next_work()
        assert work == StepWork("decode", 1, 16)
        assert active.record(work, 0.01) == 1

    def test_resident_tokens_capped_at_prompt(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(16, 4))
        assert active.assume_resident(99) == 16

    def test_rejected_after_start(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(16, 4))
        active.record(active.next_work(), 0.1)
        with pytest.raises(RuntimeError, match="already started"):
            active.assume_resident(16)

    def test_negative_rejected(self):
        session = InferenceSession(GPT2)
        active = session.start_request(Workload(16, 4))
        with pytest.raises(ValueError, match="negative"):
            active.assume_resident(-1)
