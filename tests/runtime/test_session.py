"""Tests for the host-runtime inference session."""

import pytest

from repro.eval.latency import FpgaPerformanceModel
from repro.models.config import GPT2, LLAMA, QWEN
from repro.models.workload import Workload
from repro.resource.token_model import EqualizationStrategy
from repro.runtime.session import InferenceSession


class TestGeneration:
    def test_step_structure(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(32, 16))
        assert result.steps[0].kind == "prefill"
        assert result.steps[0].tokens == 32
        decode_steps = [s for s in result.steps if s.kind == "decode"]
        assert len(decode_steps) == 15
        assert all(step.tokens == 1 for step in decode_steps)

    def test_kv_cache_grows_monotonically(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(16, 8))
        kv_lengths = [step.kv_len for step in result.steps]
        assert kv_lengths == sorted(kv_lengths)
        assert kv_lengths[-1] == 16 + 7

    def test_ttft_and_totals(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(64, 32))
        assert result.ttft_s == result.steps[0].seconds
        assert result.total_seconds == pytest.approx(
            result.ttft_s + result.decode_seconds)
        assert result.decode_tokens_per_second > 0

    def test_matches_latency_model(self):
        """The session is the stepwise view of the Table 4 latency model."""
        session = InferenceSession(GPT2)
        workload = Workload(32, 32)
        result = session.generate(workload)
        breakdown = FpgaPerformanceModel().evaluate(GPT2, workload)
        assert result.ttft_s == pytest.approx(breakdown.ttft_s)
        assert result.decode_seconds == pytest.approx(breakdown.decode_time_s)

    def test_kernel_invocations_counted_per_layer(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(8, 4))
        assert result.total_kernel_invocations == GPT2.num_layers * len(result.steps)

    def test_per_token_latencies(self):
        session = InferenceSession(GPT2)
        result = session.generate(Workload(8, 4))
        latencies = result.per_token_latencies_ms()
        assert len(latencies) == len(result.steps)
        assert latencies[0] > latencies[1]  # prefill slower than one decode step

    def test_kv_cache_bytes_accounted(self):
        session = InferenceSession(QWEN)
        result = session.generate(Workload(32, 32))
        assert result.kv_cache_bytes == pytest.approx(
            64 * QWEN.kv_cache_bytes_per_token(1.0))


class TestSessionPolicies:
    def test_max_seq_len_enforced(self):
        session = InferenceSession(GPT2, max_seq_len=64)
        with pytest.raises(ValueError, match="max_seq_len"):
            session.generate(Workload(64, 32))

    def test_parameters_packed_once(self):
        session = InferenceSession(GPT2)
        first = session.pack_parameters()
        second = session.pack_parameters()
        assert first > 0 and second == 0.0

    def test_throughput_sweep_packs_once(self):
        session = InferenceSession(GPT2)
        results = session.throughput_sweep([Workload(8, 4), Workload(8, 4)])
        assert results[0].packing_seconds > 0
        assert results[1].packing_seconds == 0.0

    def test_strategy_from_compiled_design(self, gpt2_compiled):
        session = InferenceSession(GPT2, compiled=gpt2_compiled)
        assert session.strategy is EqualizationStrategy.NORMAL

    def test_conservative_strategy_slows_generation(self):
        fast = InferenceSession(LLAMA)
        slow = InferenceSession(LLAMA)
        slow.strategy = EqualizationStrategy.CONSERVATIVE
        workload = Workload(32, 16)
        assert slow.generate(workload).total_seconds \
            > fast.generate(workload).total_seconds
