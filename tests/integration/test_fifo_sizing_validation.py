"""Cross-validation: LP FIFO sizing against the token-level simulator.

This ties together the two halves of the Pitfall-4 story: the analytical
token behaviour model + LP choose FIFO depths, and the simulator confirms
that those depths keep the pipeline deadlock-free while undersized FIFOs do
not behave as well.
"""

import pytest

from repro.resource.fifo_sizing import SizingEdge, size_fifos
from repro.resource.token_model import EqualizationStrategy, KernelTiming
from repro.sim.simulator import DataflowSimulator, SimFifo, SimKernel


def build_chain_sim(depths, timings, tokens=32):
    """A three-stage pipeline with explicitly chosen FIFO depths."""
    sim = DataflowSimulator()
    sim.add_fifo(SimFifo("src_in", capacity=tokens))
    sim.preload_fifo("src_in", tokens)
    sim.add_fifo(SimFifo("a_b", capacity=depths[("a", "b")]))
    sim.add_fifo(SimFifo("b_c", capacity=depths[("b", "c")]))
    sim.add_fifo(SimFifo("sink", capacity=tokens))
    sim.add_kernel(SimKernel("a", tokens, timings["a"].initial_delay,
                             timings["a"].pipeline_ii,
                             input_fifos=[("src_in", 1.0)],
                             output_fifos=[("a_b", 1.0)]))
    sim.add_kernel(SimKernel("b", tokens, timings["b"].initial_delay,
                             timings["b"].pipeline_ii,
                             input_fifos=[("a_b", 1.0)],
                             output_fifos=[("b_c", 1.0)]))
    sim.add_kernel(SimKernel("c", tokens, timings["c"].initial_delay,
                             timings["c"].pipeline_ii,
                             input_fifos=[("b_c", 1.0)],
                             output_fifos=[("sink", 1.0)]))
    return sim


@pytest.fixture
def unbalanced_timings():
    return {
        "a": KernelTiming("a", initial_delay=4, pipeline_ii=1, total_tokens=32),
        "b": KernelTiming("b", initial_delay=8, pipeline_ii=3, total_tokens=32),
        "c": KernelTiming("c", initial_delay=2, pipeline_ii=1, total_tokens=32),
    }


class TestSizingAgainstSimulation:
    def test_lp_sized_fifos_run_cleanly(self, unbalanced_timings):
        edges = [SizingEdge("a", "b", 32), SizingEdge("b", "c", 32)]
        result = size_fifos(edges, unbalanced_timings)
        sim = build_chain_sim(result.depths, unbalanced_timings)
        outcome = sim.run()
        assert not outcome.deadlocked

    def test_observed_occupancy_never_exceeds_lp_depth(self, unbalanced_timings):
        edges = [SizingEdge("a", "b", 32), SizingEdge("b", "c", 32)]
        result = size_fifos(edges, unbalanced_timings)
        sim = build_chain_sim(result.depths, unbalanced_timings)
        outcome = sim.run()
        assert outcome.fifo_max_occupancy["a_b"] <= result.depth_of("a", "b")
        assert outcome.fifo_max_occupancy["b_c"] <= result.depth_of("b", "c")

    def test_sized_design_is_not_slower_than_minimal_fifos(self, unbalanced_timings):
        edges = [SizingEdge("a", "b", 32), SizingEdge("b", "c", 32)]
        sized = size_fifos(edges, unbalanced_timings)
        minimal = {("a", "b"): 2, ("b", "c"): 2}
        sized_cycles = build_chain_sim(sized.depths, unbalanced_timings).run().total_cycles
        minimal_cycles = build_chain_sim(minimal, unbalanced_timings).run().total_cycles
        assert sized_cycles <= minimal_cycles

    def test_conservative_strategy_trades_latency_for_area(self, unbalanced_timings):
        edges = [SizingEdge("a", "b", 32), SizingEdge("b", "c", 32)]
        normal = size_fifos(edges, unbalanced_timings, EqualizationStrategy.NORMAL)
        conservative = size_fifos(edges, unbalanced_timings,
                                  EqualizationStrategy.CONSERVATIVE)
        assert conservative.total_depth <= normal.total_depth
