"""Property-based tests over the compilation pipeline (hypothesis).

These generate random small Linalg programs (chains of matmuls and
elementwise ops with random shapes) and check pipeline-level invariants that
must hold for *any* input program, not just the LLM blocks:

* compilation succeeds and the dataflow graph verifies;
* stream-based fusion never increases the on-chip intermediate footprint;
* every stream edge either type-matches or carries a converter whose buffer
  is bounded by the full tensor;
* the FIFO-sizing LP returns a depth of at least 2 for every stream edge.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.itensor.converter import infer_converter


@st.composite
def random_program(draw):
    """A random chain of matmul / elementwise ops over power-of-two shapes."""
    dims = [draw(st.sampled_from([16, 32, 64])) for _ in range(4)]
    num_ops = draw(st.integers(min_value=2, max_value=5))
    builder = GraphBuilder("random")
    value = builder.input((dims[0], dims[1]), INT8)
    current_cols = dims[1]
    for index in range(num_ops):
        kind = draw(st.sampled_from(["matmul", "gelu", "add", "softmax"]))
        if kind == "matmul":
            out_cols = draw(st.sampled_from([16, 32, 64]))
            weight = builder.weight((current_cols, out_cols), INT8,
                                    name=f"w{index}")
            value = builder.matmul(value, weight, name=f"mm{index}")
            current_cols = out_cols
        elif kind == "gelu":
            value = builder.gelu(value, name=f"gelu{index}")
        elif kind == "add":
            other = builder.weight(value.type.shape, INT8, name=f"b{index}")
            value = builder.add(value, other, name=f"add{index}")
        else:
            value = builder.softmax(value, name=f"softmax{index}")
    builder.output(value)
    return builder.build()


OPTIONS = CompilerOptions(default_tile_size=8, overall_unroll_size=32,
                          generate_code=False)


class TestPipelineProperties:
    @given(random_program())
    @settings(max_examples=25, deadline=None)
    def test_compilation_succeeds_and_verifies(self, graph):
        result = StreamTensorCompiler(OPTIONS).compile(graph)
        result.dataflow_graph.verify()
        assert result.report.num_kernels >= 1

    @given(random_program())
    @settings(max_examples=25, deadline=None)
    def test_fusion_never_increases_onchip_memory(self, graph):
        result = StreamTensorCompiler(OPTIONS).compile(graph)
        report = result.report
        if report.intermediate_bytes_unfused > 0:
            assert (report.intermediate_bytes_fused
                    <= report.intermediate_bytes_unfused + 1e-6)

    @given(random_program())
    @settings(max_examples=25, deadline=None)
    def test_stream_edges_are_type_safe(self, graph):
        result = StreamTensorCompiler(OPTIONS).compile(graph)
        for edge in result.dataflow_graph.stream_edges():
            if edge.needs_converter:
                spec = infer_converter(edge.producer_type, edge.consumer_type)
                full = math.prod(edge.producer_type.tensor_shape())
                assert math.prod(spec.buf_shape) <= full
            else:
                assert edge.producer_type.is_compatible_with(edge.consumer_type)

    @given(random_program())
    @settings(max_examples=25, deadline=None)
    def test_fifo_depths_are_sized(self, graph):
        result = StreamTensorCompiler(OPTIONS).compile(graph)
        for edge in result.dataflow_graph.stream_edges():
            assert edge.fifo_depth is not None and edge.fifo_depth >= 2
            assert edge.fifo_depth <= max(2, edge.token_count)
