"""Tests codifying the paper's qualitative claims and contributions.

Each test pins one claim from the paper's introduction, Section 7 (the
comparison with Stream-HLS), or the conclusions, expressed as a property of
this reproduction rather than a number.
"""

import math

import pytest

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import fuse_kernels
from repro.dataflow.structure import EdgeKind, TaskKind
from repro.ir.builder import GraphBuilder
from repro.ir.dtypes import INT8
from repro.ir.types import TensorType
from repro.itensor.converter import infer_converter
from repro.itensor.itensor_type import itensor_from_tiling
from repro.models.config import GPT2
from repro.models.transformer import build_prefill_block
from repro.platform.fpga import AMD_U55C


class TestContribution2ItensorTypeSystem:
    """Contribution 2: the itensor type encodes stream information, making
    mismatches detectable that plain tensor types cannot express."""

    def test_same_tensor_type_different_stream_order_is_distinguished(self):
        """The Graphene failure mode of Section 3.1.1: a row-major producer
        and a column-major consumer share the same tensor type but must not
        be connected by a plain FIFO."""
        tensor = TensorType((64, 64), INT8)
        row_major = itensor_from_tiling(tensor, (16, 16))
        col_major = itensor_from_tiling(tensor, (16, 16), loop_order=[1, 0])
        assert row_major.tensor_type() == col_major.tensor_type()
        assert not row_major.is_compatible_with(col_major)

    def test_converter_reconciles_any_two_layouts_of_the_same_tensor(self):
        """Section 7: unlike Stream-HLS, any two kernels are fuseable by
        design — a converter always exists, at some memory cost."""
        tensor = TensorType((64, 64), INT8)
        views = [
            itensor_from_tiling(tensor, (16, 16)),
            itensor_from_tiling(tensor, (16, 16), loop_order=[1, 0]),
            itensor_from_tiling(tensor, (8, 32)),
            itensor_from_tiling(tensor, (64, 8)),
        ]
        for producer in views:
            for consumer in views:
                spec = infer_converter(producer, consumer)
                assert math.prod(spec.buf_shape) <= 64 * 64


class TestStreamHlsComparison:
    """Section 7: Stream-HLS requires equal write/read counts and matching
    orders; StreamTensor fuses kernels even when both conditions fail."""

    def test_fusion_with_unequal_read_write_counts(self):
        """A matmul consumer re-reads the producer's tensor many times (reads
        != writes), yet the pair still fuses onto a stream edge."""
        builder = GraphBuilder()
        x = builder.input((64, 64), INT8)
        w = builder.weight((64, 64), INT8)
        first = builder.matmul(x, w, name="producer")
        second = builder.matmul(first, w, name="consumer")
        builder.output(second)
        dataflow = convert_to_dataflow(builder.build())
        fuse_kernels(dataflow, c_max=AMD_U55C.onchip_memory_bytes)

        edge = next(e for e in dataflow.internal_edges()
                    if e.producer.name == "producer")
        assert edge.kind is EdgeKind.STREAM
        # Reads exceed writes because of re-access; a converter bridges them.
        assert edge.consumer_type.num_iterations > edge.producer_type.num_iterations
        assert edge.converter is not None

    def test_whole_transformer_block_fuses_not_just_sublayers(self):
        """Stream-HLS only reports attention and FFN separately; StreamTensor
        fuses the entire block into one dataflow accelerator."""
        graph = build_prefill_block(GPT2, 128)
        options = CompilerOptions(generate_code=False)
        result = StreamTensorCompiler(options).compile(graph, GPT2)
        assert result.fusion_plan.num_groups == 1
        assert result.report.fits_on_chip

    def test_dmas_are_generated_automatically(self):
        """Section 7: Stream-HLS cannot generate external-memory DMAs; here
        every external interface gets one without manual effort."""
        graph = build_prefill_block(GPT2, 64)
        options = CompilerOptions(generate_code=False)
        result = StreamTensorCompiler(options).compile(graph, GPT2)
        dma_tasks = [t for k in result.dataflow_graph.kernels for t in k.tasks
                     if t.kind in (TaskKind.DMA_LOAD, TaskKind.DMA_STORE)]
        external_edges = (result.dataflow_graph.external_input_edges()
                          + result.dataflow_graph.external_output_edges())
        assert len(dma_tasks) >= len(external_edges)


class TestPitfallResolutions:
    """Section 1.3 pitfalls are each resolved by a dedicated mechanism."""

    def test_pitfall1_interkernel_balance(self):
        """Intensity-driven unrolling narrows the latency gap between kernels."""
        from repro.dse.explorer import build_tiling_space
        from repro.dse.unrolling import latency_balance_ratio
        graph = build_prefill_block(GPT2, 64)
        unbalanced = build_tiling_space(graph, 16, len(graph.ops))
        for node in unbalanced.nodes:
            node.unroll_factor = 1
        balanced = build_tiling_space(graph, 16, 512)
        assert latency_balance_ratio(balanced) <= latency_balance_ratio(unbalanced)

    def test_pitfall3_fusion_respects_memory_budget(self):
        """Algorithm 2 never spends more converter memory per fused group
        than the budget it was given."""
        graph = build_prefill_block(GPT2, 128)
        from repro.dse.explorer import build_tiling_space
        space = build_tiling_space(graph, 16, 128)
        for budget in (32e3, 256e3, 2e6):
            dataflow = convert_to_dataflow(graph, space.to_configs())
            plan = fuse_kernels(dataflow, c_max=budget)
            assert all(cost <= budget for cost in plan.costs)

    def test_pitfall4_fifo_depths_bounded_by_token_count(self, gpt2_compiled):
        """The LP never sizes a FIFO beyond the number of tokens that ever
        cross it (the trivially safe upper bound)."""
        for edge in gpt2_compiled.dataflow_graph.stream_edges():
            assert edge.fifo_depth <= max(2, edge.token_count)
