"""End-to-end integration tests across the whole compiler stack."""

import pytest

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.dataflow.structure import EdgeKind, TaskKind
from repro.itensor.verify import verify_connection, verify_fifo_tokens
from repro.models.config import MODEL_CONFIGS
from repro.models.transformer import build_decode_block, build_prefill_block
from repro.platform.fpga import AMD_U55C
from repro.sim.builder import build_simulation


@pytest.mark.parametrize("model_name", list(MODEL_CONFIGS), ids=list(MODEL_CONFIGS))
class TestEveryModelCompiles:
    def test_decode_block_compiles_and_fits(self, model_name):
        config = MODEL_CONFIGS[model_name]
        graph = build_decode_block(config, kv_len=64)
        result = StreamTensorCompiler(CompilerOptions()).compile(graph, config)
        assert result.fusion_plan.num_groups == 1
        assert result.memory_allocation.fits
        assert result.report.fits_on_chip

    def test_prefill_block_compiles(self, model_name):
        config = MODEL_CONFIGS[model_name]
        graph = build_prefill_block(config, 64)
        options = CompilerOptions(generate_code=False)
        result = StreamTensorCompiler(options).compile(graph, config)
        assert result.report.num_kernels > 5
        assert result.report.memory_reduction_ratio < 0.6


class TestTypeSafetyOfCompiledDesign:
    def test_every_stream_edge_is_verifiable(self, gpt2_compiled):
        """Every FIFO connection either matches exactly or has a converter —
        the guarantee the itensor typing system exists to provide."""
        for edge in gpt2_compiled.dataflow_graph.stream_edges():
            verify_connection(edge.producer_type, edge.consumer_type,
                              allow_converter=True)
            if not edge.needs_converter:
                verify_fifo_tokens(edge.producer_type, edge.consumer_type)

    def test_converter_buffers_fit_within_budget(self, gpt2_compiled):
        graph = gpt2_compiled.dataflow_graph
        assert graph.converter_bytes() < AMD_U55C.onchip_memory_bytes

    def test_memory_edges_have_dma_tasks(self, gpt2_compiled):
        graph = gpt2_compiled.dataflow_graph
        for edge in graph.memory_edges():
            owner = edge.consumer or edge.producer
            if owner is None:
                continue
            assert any(t.kind in (TaskKind.DMA_LOAD, TaskKind.DMA_STORE)
                       for t in owner.tasks)


class TestCompiledDesignSimulates:
    def test_gpt2_decode_block_runs_without_deadlock(self, gpt2_compiled):
        simulation = build_simulation(gpt2_compiled.dataflow_graph, AMD_U55C)
        outcome = simulation.run(max_cycles=5e8)
        assert not outcome.deadlocked

    def test_all_kernels_finish(self, gpt2_compiled):
        simulation = build_simulation(gpt2_compiled.dataflow_graph, AMD_U55C)
        outcome = simulation.run(max_cycles=5e8)
        graph_kernels = {k.name for k in gpt2_compiled.dataflow_graph.kernels}
        for name in graph_kernels:
            assert outcome.kernel_finish_times[name] > 0
