"""Fault injection: crash recovery under autoscaled replacement.

Not a paper artefact — the paper (conf_micro_YeC25) measures
single-request latency only.  This benchmark pins the serving tier's
recovery story: an autoscaled fleet loses a replica mid-run to an
injected crash, every in-flight request on the dead replica is
re-dispatched through the router, the autoscaler spawns a warmed-up
replacement, and the run still completes **100% of its requests with
zero failures**.  The headline entry (``cluster_fault_recovery``) lands
in ``BENCH_cluster.json`` with the recovery TTFT of the retried
requests, next to an unfaulted twin of the same fleet and trace
(``cluster_fault_free_twin``) so the price of the crash — extra
replica-seconds, recovery-tail TTFT — is a one-line diff.

Sizing: ``REPRO_BENCH_FAST=1`` (the CI smoke job) shrinks the trace;
the asserted outcomes are structural and hold at both sizes.
"""

import os

import pytest

import serving_artifact
from repro.models.config import GPT2
from repro.serving.cluster import (
    AutoscalerConfig,
    FaultPlan,
    ReplicaCrash,
    ServingCluster,
    SlowNode,
)
from repro.serving.workload_gen import poisson_trace

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NUM_REQUESTS = 32 if FAST else 96
RATE_HZ = 30.0
# Early enough that the dead replica holds a full batch plus queue when
# it dies, late enough that the run is past warm-up transients.
CRASH_S = 0.4


@pytest.fixture(scope="module")
def fault_trace():
    return poisson_trace(NUM_REQUESTS, RATE_HZ, seed=11)


def autoscaled_cluster(fault_plan=None):
    return ServingCluster(
        GPT2, initial_replicas=3, router="least_queue",
        autoscaler=AutoscalerConfig(min_replicas=3, max_replicas=5,
                                    control_interval_s=0.1,
                                    cooldown_s=0.3, warmup_s=0.2),
        fault_plan=fault_plan)


@pytest.mark.benchmark(group="cluster")
def test_autoscaled_fleet_recovers_from_crash(benchmark, fault_trace):
    plan = FaultPlan(events=(ReplicaCrash(CRASH_S, 1),), max_retries=3)
    clean = autoscaled_cluster().run(fault_trace)
    faulted = benchmark(autoscaled_cluster(plan).run, fault_trace)

    print("\n" + faulted.format())
    print(f"  crash at {CRASH_S}s: {faulted.faults['crashes']} crash, "
          f"{faulted.faults['retries']} retries, "
          f"{faulted.failed} failed, recovery p95 "
          f"{faulted.faults['recovery_ttft_ms']['p95']:.1f} ms")
    serving_artifact.record_cluster(
        "cluster_fault_recovery", faulted,
        crashes=faulted.faults["crashes"],
        retries=faulted.faults["retries"],
        requests_failed=faulted.faults["requests_failed"],
        recovery_ttft_ms_p95=faulted.faults["recovery_ttft_ms"]["p95"])
    serving_artifact.record_cluster("cluster_fault_free_twin", clean)

    # The crash must actually land and lose work...
    assert faulted.faults["crashes"] == 1
    assert faulted.faults["retries"] >= 1
    # ...and recovery must be total: every request completes, none fail.
    assert faulted.completed == NUM_REQUESTS
    assert faulted.failed == 0
    assert clean.completed == NUM_REQUESTS
    # The replacement path ran: some replica spawned after the crash.
    assert any(life.spawned_s > CRASH_S for life in faulted.lifecycles)
    # Recovery is not free — the faulted run pays in replica-seconds
    # and in the retried requests' TTFT tail.
    assert faulted.faults["recovery_ttft_ms"]["p95"] > 0


@pytest.mark.benchmark(group="cluster")
def test_slow_node_degrades_without_losing_requests(benchmark,
                                                    fault_trace):
    plan = FaultPlan(events=(SlowNode(0.2, 0, scale=3.0,
                                      duration_s=1.0),))
    degraded = benchmark(autoscaled_cluster(plan).run, fault_trace)

    print("\n" + degraded.format())
    serving_artifact.record_cluster(
        "cluster_fault_slow_node", degraded,
        slow_nodes=degraded.faults["slow_nodes"])

    # A slow node loses time, never requests.
    assert degraded.faults["slow_nodes"] == 1
    assert degraded.completed == NUM_REQUESTS
    assert degraded.failed == 0
