"""Prefix caching on a shared-prompt trace: throughput and TTFT, on vs off.

Not a paper artefact — the paper (conf_micro_YeC25) serves one request at a
time and never revisits a prompt.  This benchmark drives the shared-prompt
workload prefix caching exists for (every request opens with the same
system-prompt-style prefix) through the engine twice — identical trace,
identical KV pool, cache on vs off — and asserts the acceptance bar of the
policy/prefix-cache refactor: with the cache on, followers skip the cached
prefill, so aggregate throughput must exceed 1.2x the uncached run and mean
TTFT must drop.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/test_serving_prefix_cache.py -q -s
"""

import os

import pytest

import serving_artifact
from repro.models.config import GPT2
from repro.serving import (
    KVCacheConfig,
    SchedulerConfig,
    ServingEngine,
    shared_prefix_trace,
)

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
NUM_REQUESTS = 8 if FAST else 16
PREFIX_LEN = 192
UNIQUE_LEN = 16
OUTPUT_LEN = 32
SCHEDULER = SchedulerConfig(max_batch_size=4, token_budget=256)
# Ample pool: the comparison isolates prefill skipping, not preemption.
CAPACITY_MB = 512.0


@pytest.fixture(scope="module")
def trace():
    return shared_prefix_trace(NUM_REQUESTS, prefix_len=PREFIX_LEN,
                               unique_len=UNIQUE_LEN, output_len=OUTPUT_LEN)


def run(trace, prefix_cache: bool):
    kv = KVCacheConfig.from_capacity_mb(CAPACITY_MB,
                                        enable_prefix_cache=prefix_cache)
    return ServingEngine(GPT2, kv_config=kv,
                         scheduler_config=SCHEDULER).run(trace)


@pytest.mark.benchmark(group="serving-prefix")
def test_prefix_cache_speeds_up_shared_prompt_trace(benchmark, trace):
    engine = ServingEngine(
        GPT2,
        kv_config=KVCacheConfig.from_capacity_mb(CAPACITY_MB,
                                                 enable_prefix_cache=True),
        scheduler_config=SCHEDULER)
    cached = benchmark(engine.run, trace)
    uncached = run(trace, prefix_cache=False)
    speedup = (cached.aggregate_tokens_per_s
               / uncached.aggregate_tokens_per_s)

    print(f"\nshared-prefix trace ({NUM_REQUESTS} requests, "
          f"[{PREFIX_LEN}+{UNIQUE_LEN}:{OUTPUT_LEN}]):")
    print(f"  prefix cache off: {uncached.aggregate_tokens_per_s:8.1f} tok/s, "
          f"ttft mean {uncached.ttft.mean * 1e3:8.1f} ms")
    print(f"  prefix cache on:  {cached.aggregate_tokens_per_s:8.1f} tok/s, "
          f"ttft mean {cached.ttft.mean * 1e3:8.1f} ms "
          f"({speedup:.1f}x, hit rate {cached.prefix_hit_rate * 100:.0f}%)")
    serving_artifact.record("prefix_cache_on", cached,
                            speedup_vs_uncached=speedup)
    serving_artifact.record("prefix_cache_off", uncached)

    assert cached.completed == uncached.completed == NUM_REQUESTS
    assert uncached.prefix_hit_rate == 0.0
    # The refactor's acceptance bar: >1.2x throughput and lower mean TTFT.
    assert speedup > 1.2
    assert cached.ttft.mean < uncached.ttft.mean


@pytest.mark.benchmark(group="serving-prefix")
def test_prefix_cache_bookkeeping_consistent(benchmark, trace):
    cached = benchmark(lambda: run(trace, prefix_cache=True))

    # One group: the leader creates the prefix blocks once; every follower
    # reuses all of them.
    blocks = PREFIX_LEN // 16
    assert cached.shared_kv_blocks_created == blocks
    assert cached.shared_kv_blocks_reused \
        == (NUM_REQUESTS - 1) * blocks
    # Hit rate: followers skip the whole shared prefix of their prompts.
    expected_reused = (NUM_REQUESTS - 1) * PREFIX_LEN
    assert cached.prefix_tokens_reused == expected_reused
    total_prompt = NUM_REQUESTS * (PREFIX_LEN + UNIQUE_LEN)
    assert cached.prefix_hit_rate == pytest.approx(
        expected_reused / total_prompt)
    assert cached.preemptions == 0
