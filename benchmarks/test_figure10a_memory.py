"""Figure 10a: on-chip intermediate-result memory before/after kernel fusion.

Paper reference points: fusion reduces the intermediate-result memory of a
single transformer layer to 14.8%-16.8% of the unfused design, and Llama has
the most intermediate data of the four models.
"""

import pytest

from repro.eval.experiments import format_figure10a, run_figure10a


@pytest.mark.benchmark(group="figure10")
def test_figure10a_memory_reduction(benchmark, warm_context):
    rows = benchmark(run_figure10a, warm_context)
    print("\n" + format_figure10a(rows))

    by_model = {row.model: row for row in rows}
    assert set(by_model) == {"gpt2", "qwen", "llama", "gemma"}

    for row in rows:
        # Paper band is 14.8%-16.8%; we accept a slightly wider band since the
        # substrate is an analytical tiling model rather than measured HLS.
        assert 0.08 < row.ratio < 0.25, row
        # Unfused intermediates are megabytes — far too large to keep on-chip
        # alongside compute, which is why fusion is required at all.
        assert row.original_mb > 5.0

    assert by_model["llama"].original_mb == max(r.original_mb for r in rows)
    average_ratio = sum(r.ratio for r in rows) / len(rows)
    print(f"average post-fusion ratio: {average_ratio * 100:.1f}% "
          "(paper: 14.8%-16.8%)")
