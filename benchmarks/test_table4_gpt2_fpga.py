"""Table 4: GPT-2 latency/TTFT/decode-speed vs the Allo and DFX FPGA baselines.

Paper reference points (geometric means): latency 0.76x of Allo and 0.52x of
DFX; TTFT 0.40x of Allo and 0.19x of DFX; decode speed 1.06x of Allo and
1.17x of DFX.
"""

import pytest

from repro.eval.experiments import format_table4, run_table4


def geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@pytest.mark.benchmark(group="table4")
def test_table4_gpt2_vs_fpga_baselines(benchmark, warm_context):
    rows = benchmark(run_table4, warm_context)
    print("\n" + format_table4(rows))

    latency_vs_allo = geomean([row.latency_ratio_vs_allo for row in rows])
    ttft_vs_allo = geomean([row.ttft_ratio_vs_allo for row in rows])
    speed_vs_allo = geomean([row.speed_ratio_vs_allo for row in rows])
    latency_vs_dfx = geomean([row.latency_ratio_vs_dfx for row in rows])
    ttft_vs_dfx = geomean([row.ttft_ratio_vs_dfx for row in rows])
    speed_vs_dfx = geomean([row.speed_ratio_vs_dfx for row in rows])

    print(f"geomean vs Allo: latency {latency_vs_allo:.2f}x (paper 0.76x), "
          f"TTFT {ttft_vs_allo:.2f}x (paper 0.40x), "
          f"speed {speed_vs_allo:.2f}x (paper 1.06x)")
    print(f"geomean vs DFX:  latency {latency_vs_dfx:.2f}x (paper 0.52x), "
          f"TTFT {ttft_vs_dfx:.2f}x (paper 0.19x), "
          f"speed {speed_vs_dfx:.2f}x (paper 1.17x)")

    # Shape assertions: StreamTensor wins latency and TTFT against both
    # baselines and is at least on par on decode speed.
    assert latency_vs_allo < 1.0
    assert latency_vs_dfx < 0.7
    assert ttft_vs_allo < 0.6
    assert ttft_vs_dfx < 0.35
    assert speed_vs_allo > 0.9
    assert speed_vs_dfx > 1.0
