"""Ablation: LP-based FIFO sizing vs naive minimal-depth FIFOs (Section 5.3).

The paper's motivation for FIFO sizing (Pitfall 4) is that undersized FIFOs
cause stall cascades or deadlock, while naively oversized FIFOs waste on-chip
memory.  This ablation sizes a compiled GPT-2 decode block three ways and
simulates each: minimal depth-2 FIFOs, LP-sized FIFOs, and worst-case
token-count FIFOs.
"""

import pytest

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.models.config import GPT2
from repro.models.transformer import build_decode_block
from repro.platform.fpga import AMD_U55C
from repro.sim.builder import build_simulation


def compile_decode_block():
    graph = build_decode_block(GPT2, kv_len=64)
    options = CompilerOptions(generate_code=False)
    return StreamTensorCompiler(options).compile(graph, GPT2)


def simulate_with_depths(result, depth_override=None):
    graph = result.dataflow_graph
    saved = {edge.uid: edge.fifo_depth for edge in graph.stream_edges()}
    if depth_override is not None:
        for edge in graph.stream_edges():
            edge.fifo_depth = depth_override(edge)
    try:
        outcome = build_simulation(graph, AMD_U55C).run(max_cycles=5e8,
                                                        raise_on_deadlock=False)
    finally:
        for edge in graph.stream_edges():
            edge.fifo_depth = saved[edge.uid]
    return outcome


@pytest.mark.benchmark(group="ablation")
def test_ablation_fifo_sizing_strategies(benchmark):
    result = compile_decode_block()

    def run_all():
        lp_sized = simulate_with_depths(result)
        minimal = simulate_with_depths(result, lambda edge: 2)
        worst_case = simulate_with_depths(result, lambda edge: edge.token_count)
        return lp_sized, minimal, worst_case

    lp_sized, minimal, worst_case = benchmark(run_all)

    lp_bytes = result.fifo_sizing.total_fifo_bytes
    worst_bytes = sum(edge.token_count * (edge.producer_type.element_bytes
                                          if edge.producer_type else 4.0)
                      for edge in result.dataflow_graph.stream_edges())
    print(f"\nLP-sized FIFOs:     {lp_sized.total_cycles:10.0f} cycles, "
          f"{lp_bytes / 1e3:8.1f} KB, deadlocked={lp_sized.deadlocked}")
    print(f"minimal (depth 2):  {minimal.total_cycles:10.0f} cycles, "
          f"deadlocked={minimal.deadlocked}, "
          f"backpressure stalls={minimal.total_backpressure_stalls}")
    print(f"worst-case depths:  {worst_case.total_cycles:10.0f} cycles, "
          f"{worst_bytes / 1e3:8.1f} KB")

    # The LP-sized design completes without deadlock and is never slower than
    # the minimal design, while using far less memory than worst-case sizing.
    assert not lp_sized.deadlocked
    if not minimal.deadlocked:
        assert lp_sized.total_cycles <= minimal.total_cycles * 1.01
        assert minimal.total_backpressure_stalls \
            >= lp_sized.total_backpressure_stalls
    assert not worst_case.deadlocked
    assert lp_bytes < worst_bytes
    assert lp_sized.total_cycles <= worst_case.total_cycles * 1.05
