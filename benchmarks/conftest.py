"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md's per-experiment index) and prints the reproduced rows
so that ``pytest benchmarks/ --benchmark-only -s`` doubles as the artefact
regeneration script.  A session-scoped :class:`ExperimentContext` caches the
compiled designs so the per-benchmark timings measure the experiment itself.
"""

from __future__ import annotations

import pytest

import serving_artifact
from repro.eval.experiments import ExperimentContext


def pytest_sessionfinish(session, exitstatus):
    """Persist the serving benchmark artifact (BENCH_serving.json) so the
    perf trajectory is diffable across PRs; no-op when no serving benchmark
    ran in this session."""
    serving_artifact.write()


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def warm_context(context) -> ExperimentContext:
    """A context with every model's design already compiled."""
    from repro.models.config import MODEL_CONFIGS

    for config in MODEL_CONFIGS.values():
        context.compiled(config)
    return context
