"""Ablation: Normal vs Conservative equalisation (Section 5.3.3).

The Conservative strategy scales every kernel's II to the slowest kernel's
throughput: FIFO depths (area) shrink, but faster kernels stall and overall
latency grows — the area/performance trade-off the paper describes, and the
mechanism behind Llama's lower energy efficiency in Figure 9.
"""

import pytest

from repro.eval.latency import FpgaPerformanceModel
from repro.models.config import GPT2, LLAMA
from repro.models.workload import Workload
from repro.platform.hls_profiler import HlsProfiler
from repro.platform.fpga import AMD_U55C
from repro.resource.fifo_sizing import size_fifos, sizing_edges_from_graph
from repro.resource.token_model import EqualizationStrategy


@pytest.mark.benchmark(group="ablation")
def test_ablation_equalization_strategies(benchmark, warm_context):
    result = warm_context.compiled(GPT2)
    graph = result.dataflow_graph
    timings = result.kernel_timings
    edges = sizing_edges_from_graph(graph)

    def size_both():
        normal = size_fifos(edges, timings, EqualizationStrategy.NORMAL)
        conservative = size_fifos(edges, timings, EqualizationStrategy.CONSERVATIVE)
        return normal, conservative

    normal, conservative = benchmark(size_both)

    print(f"\nNormal:       total depth {normal.total_depth:6d}  "
          f"FIFO bytes {normal.total_fifo_bytes / 1e3:8.1f} KB")
    print(f"Conservative: total depth {conservative.total_depth:6d}  "
          f"FIFO bytes {conservative.total_fifo_bytes / 1e3:8.1f} KB")

    # Area: conservative never needs more FIFO storage than normal.
    assert conservative.total_depth <= normal.total_depth
    assert conservative.total_fifo_bytes <= normal.total_fifo_bytes

    # Performance: the conservative strategy dilates latency in the
    # end-to-end model (the Llama effect of Figure 9).
    model = FpgaPerformanceModel()
    workload = Workload(64, 64)
    threshold = (model.conservative_threshold_fraction
                 * model.platform.onchip_memory_bytes)
    normal_latency = model.evaluate(LLAMA, workload,
                                    intermediate_bytes=threshold * 0.5).latency_s
    conservative_latency = model.evaluate(LLAMA, workload,
                                          intermediate_bytes=threshold * 2).latency_s
    print(f"Llama [64:64] latency: normal {normal_latency * 1e3:.1f} ms, "
          f"conservative {conservative_latency * 1e3:.1f} ms")
    assert conservative_latency > normal_latency
