"""Throughput vs KV-cache capacity: the memory-pressure serving curve.

Not a paper artefact — the paper (conf_micro_YeC25) measures single-request
latency and its host runtime never faces KV contention.  This benchmark
sweeps the per-device KV block pool over the same Poisson trace and records
the curve the KV manager produces: at ample capacity the engine matches the
capacity-oblivious PR 1 engine exactly (0 preemptions, identical tokens/s);
as the pool shrinks below the working set, watermark-driven preemption +
recompute eat into throughput but every request still completes.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/test_serving_kv_capacity.py -q -s
"""

import os

import pytest

import serving_artifact
from repro.eval.serving import run_capacity_sweep
from repro.models.config import GPT2
from repro.serving import SchedulerConfig, ServingEngine, poisson_trace

# REPRO_BENCH_FAST=1 (the CI smoke job) shrinks the trace; the regime
# assertions are structural and hold at both sizes.
FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
NUM_REQUESTS = 16 if FAST else 32
ARRIVAL_RATE_HZ = 50.0
SCHEDULER = SchedulerConfig(max_batch_size=8, token_budget=256)

# GPT-2 KV is ~49 KB/token at A8; [128:128] requests hold ~12.6 MB each, so
# a batch of 8 wants ~100 MB: 512 MB is ample, 24 MB is heavy pressure.
CAPACITIES_MB = [None, 512.0, 96.0, 48.0, 24.0]


@pytest.fixture(scope="module")
def trace():
    return poisson_trace(NUM_REQUESTS, ARRIVAL_RATE_HZ, seed=0,
                         input_choices=(64, 128), output_choices=(64, 128))


@pytest.fixture(scope="module")
def curve(trace):
    return run_capacity_sweep(GPT2, trace, CAPACITIES_MB,
                              scheduler_config=SCHEDULER,
                              high_watermark=0.90, low_watermark=0.70)


@pytest.mark.benchmark(group="serving-kv")
def test_throughput_vs_capacity_curve(benchmark, trace, curve):
    kv_engine = ServingEngine(GPT2, scheduler_config=SCHEDULER)
    benchmark(kv_engine.run, trace)

    print("\nthroughput vs KV capacity (GPT-2, 1 device):")
    for point in curve:
        print("  " + point.format())

    unmanaged, ample, tight = curve[0], curve[1], curve[-1]
    serving_artifact.record("kv_capacity_ample", ample.report,
                            capacity_mb=CAPACITIES_MB[1])
    serving_artifact.record("kv_capacity_tight", tight.report,
                            capacity_mb=CAPACITIES_MB[-1])

    # Ample regime: the managed engine is indistinguishable from PR 1.
    assert ample.preemptions == 0
    assert ample.report.completed == NUM_REQUESTS
    assert ample.tokens_per_s == pytest.approx(unmanaged.tokens_per_s)

    # Overflow regime: completes via preemption + recompute, paying for it.
    assert tight.preemptions >= 1
    assert tight.report.completed == NUM_REQUESTS
    assert tight.tokens_per_s < ample.tokens_per_s

    # The curve is a curve: shrinking capacity never helps throughput.
    managed = curve[1:]
    for wider, narrower in zip(managed, managed[1:]):
        assert narrower.tokens_per_s <= wider.tokens_per_s * 1.001


@pytest.mark.benchmark(group="serving-kv")
def test_preemption_onset_splits_the_curve(benchmark, trace, curve):
    """Preemptions appear exactly where capacity drops below the working
    set, and every pressured point pays for them in throughput.  (The raw
    preemption *count* is not monotone in capacity: a tighter pool admits
    fewer residents, so there is less to evict — each eviction just costs
    more recompute, which the throughput ordering already captures.)"""
    benchmark(lambda: run_capacity_sweep(GPT2, trace, [24.0],
                                         scheduler_config=SCHEDULER,
                                         high_watermark=0.90,
                                         low_watermark=0.70))
    managed = curve[1:]
    preemptions = [point.preemptions for point in managed]
    print(f"\npreemptions along the curve {CAPACITIES_MB[1:]}: {preemptions}")
    ample_tok_s = managed[0].tokens_per_s
    onset_seen = False
    for point in managed:
        if point.preemptions:
            onset_seen = True
            assert point.tokens_per_s < ample_tok_s
        else:
            assert not onset_seen, \
                "pressure-free point below a pressured capacity"
            assert point.tokens_per_s == pytest.approx(ample_tok_s)
    assert onset_seen, "sweep never reached the pressure regime"
    assert all(0.0 < p.report.peak_kv_utilization <= 1.0 for p in managed)
