"""Table 5: GPT-2 vs the NVIDIA A100 and RTX 2080Ti.

Paper reference points (geometric means): total latency 0.64x of the A100 and
0.25x of the 2080Ti; the GPUs win TTFT by 10.65x / 3.67x; StreamTensor wins
decode speed by 1.89x / 4.73x.
"""

import pytest

from repro.eval.experiments import format_table5, run_table5


def geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@pytest.mark.benchmark(group="table5")
def test_table5_gpt2_vs_gpus(benchmark, warm_context):
    rows = benchmark(run_table5, warm_context)
    print("\n" + format_table5(rows))

    latency_vs_a100 = geomean([row.latency_ratio_vs_a100 for row in rows])
    ttft_vs_a100 = geomean([row.ttft_ratio_vs_a100 for row in rows])
    speed_vs_a100 = geomean([row.speed_ratio_vs_a100 for row in rows])
    latency_vs_2080 = geomean([row.latency_ratio_vs_2080ti for row in rows])
    speed_vs_2080 = geomean([row.speed_ratio_vs_2080ti for row in rows])

    print(f"geomean vs A100:   latency {latency_vs_a100:.2f}x (paper 0.64x), "
          f"TTFT {ttft_vs_a100:.2f}x (paper 10.65x), "
          f"speed {speed_vs_a100:.2f}x (paper 1.89x)")
    print(f"geomean vs 2080Ti: latency {latency_vs_2080:.2f}x (paper 0.25x), "
          f"speed {speed_vs_2080:.2f}x (paper 4.73x)")

    # Shape: the dataflow accelerator wins total latency and decode speed;
    # the GPUs win TTFT by a large, input-length-growing margin.
    assert latency_vs_a100 < 1.0
    assert latency_vs_2080 < 0.6
    assert speed_vs_a100 > 1.3
    assert speed_vs_2080 > 2.5
    assert ttft_vs_a100 > 3.0
    ttft_ratios = [row.ttft_ratio_vs_a100 for row in rows]
    assert ttft_ratios == sorted(ttft_ratios)
