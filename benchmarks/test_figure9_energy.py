"""Figure 9: energy efficiency (tokens/J) vs the A100 on emerging LLMs.

Paper reference points: StreamTensor beats the A100 by up to 1.99x on Qwen
and 1.59x on Gemma; Llama is the weakest of the three because its larger
intermediate results force the conservative FIFO-sizing strategy.
"""

import pytest

from repro.eval.energy import best_ratio, geometric_mean_ratio
from repro.eval.experiments import format_figure9, run_figure9


@pytest.mark.benchmark(group="figure9")
def test_figure9_energy_efficiency(benchmark, warm_context):
    results = benchmark(run_figure9, warm_context)
    print("\n" + format_figure9(results))

    qwen_best = best_ratio(results["qwen"])
    llama_best = best_ratio(results["llama"])
    gemma_best = best_ratio(results["gemma"])
    print(f"best ratio vs A100: qwen {qwen_best:.2f}x (paper 1.99x), "
          f"llama {llama_best:.2f}x, gemma {gemma_best:.2f}x (paper 1.59x)")

    # All nine [input:output] points exist for every model.
    assert all(len(comparisons) == 9 for comparisons in results.values())

    # Shape: Qwen and Gemma beat the A100; Qwen peaks around 2x; Llama is the
    # weakest model and roughly at parity or below.
    assert qwen_best > 1.5
    assert gemma_best > 1.1
    assert 1.4 < qwen_best < 3.0
    assert geometric_mean_ratio(results["llama"]) \
        < geometric_mean_ratio(results["gemma"])
    assert geometric_mean_ratio(results["llama"]) \
        < geometric_mean_ratio(results["qwen"])
    assert geometric_mean_ratio(results["llama"]) < 1.1
