"""Ablation: kernel-fusion memory budget sweep (Section 5.2).

Algorithm 2 fuses kernels greedily under a converter-memory budget C_max.
Sweeping C_max shows the trade-off the paper describes: with too little
budget nothing fuses (every intermediate round-trips through external
memory); with the FPGA's real on-chip budget the whole transformer block
fuses into a single group, which is what makes single-FPGA deployment
possible at all.
"""

import pytest

from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import explore_fusion, fuse_kernels, fusion_memory_report
from repro.dse.explorer import build_tiling_space
from repro.models.config import GPT2
from repro.models.transformer import build_prefill_block
from repro.platform.fpga import AMD_U55C

BUDGETS = [0.0, 64e3, 512e3, 4e6, AMD_U55C.onchip_memory_bytes]


def sweep_fusion_budget():
    graph = build_prefill_block(GPT2, 256)
    space = build_tiling_space(graph, 16, 128)
    rows = []
    for budget in BUDGETS:
        dataflow = convert_to_dataflow(graph, space.to_configs())
        plan = fuse_kernels(dataflow, c_max=budget)
        report = fusion_memory_report(dataflow)
        rows.append({
            "budget": budget,
            "groups": plan.num_groups,
            "stream_edges": len(dataflow.stream_edges()),
            "memory_edges": len([e for e in dataflow.internal_edges()
                                 if e not in dataflow.stream_edges()]),
            "fused_bytes": report["fused_bytes"],
        })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_fusion_memory_budget(benchmark):
    rows = benchmark(sweep_fusion_budget)
    print("\nFusion budget sweep (GPT-2 block, seq 256):")
    for row in rows:
        print(f"  C_max {row['budget'] / 1e6:8.3f} MB -> {row['groups']:3d} groups, "
              f"{row['stream_edges']:3d} stream edges, "
              f"on-chip {row['fused_bytes'] / 1e6:6.2f} MB")

    groups = [row["groups"] for row in rows]
    stream_edges = [row["stream_edges"] for row in rows]
    # More budget -> monotonically fewer (or equal) fused groups and more
    # streaming edges.
    assert groups == sorted(groups, reverse=True)
    assert stream_edges == sorted(stream_edges)
    # Zero budget cannot stream anything; the full budget fuses the whole
    # block into one accelerator (the paper's single-FPGA deployment).
    assert rows[0]["stream_edges"] == 0
    assert rows[-1]["groups"] == 1
    # The fused design's on-chip footprint always respects the budget given
    # to Algorithm 2 (plus the shallow default FIFOs).
    for row in rows[1:]:
        assert row["fused_bytes"] <= row["budget"] + 64e3
