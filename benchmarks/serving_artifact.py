"""Machine-readable serving-benchmark artifacts: ``BENCH_serving.json``
and ``BENCH_cluster.json``.

Every serving benchmark records its headline numbers here; the conftest
session hook writes the collected entries once the run finishes — engine
scenarios to ``benchmarks/BENCH_serving.json`` (:func:`record`), cluster
scenarios to ``benchmarks/BENCH_cluster.json`` (:func:`record_cluster`).
CI uploads both files as build artifacts, so the serving perf trajectory
(throughput, TTFT/TPOT percentiles, preemptions, prefix hit rate, fleet
scaling, SLO attainment, replica-seconds) is tracked across PRs instead of
living only in pytest stdout.  The format is flat on purpose — one entry
per benchmark scenario, every value a number — so diffing two PRs'
artifacts is a one-liner.  The only non-numeric values are the two
provenance fields stamped on every entry (``git_sha`` and the wall-clock
``recorded_at`` date), which pin each artifact to the commit and day it
was measured.  A third file, ``BENCH_manifests.json``, keeps each entry's
full run manifest (config snapshot + workload fingerprint) so ``python -m
repro reproduce`` can regenerate — and ``--check`` can verify — every
entry from a fresh clone.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
CLUSTER_ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_cluster.json"
MANIFEST_ARTIFACT_PATH = Path(__file__).resolve().parent \
    / "BENCH_manifests.json"

_entries: Dict[str, dict] = {}
_cluster_entries: Dict[str, dict] = {}
_manifests: Dict[str, dict] = {}
_provenance_cache: Optional[Dict[str, str]] = None


def _provenance() -> Dict[str, str]:
    """Commit + date stamp shared by every entry recorded this session:
    the short git SHA (``"unknown"`` outside a work tree) and the UTC
    date the benchmark ran."""
    global _provenance_cache
    if _provenance_cache is None:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, check=True,
                cwd=Path(__file__).resolve().parent).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            sha = ""
        _provenance_cache = {
            "git_sha": sha or "unknown",
            "recorded_at": datetime.now(timezone.utc).strftime("%Y-%m-%d"),
        }
    return dict(_provenance_cache)


def record(name: str, report, **extra) -> None:
    """Register one serving scenario's outcome under ``name``.

    ``report`` is a :class:`~repro.serving.metrics.ServingReport`; ``extra``
    adds scenario-specific scalars (speedups, sweep parameters, …).
    Re-recording a name overwrites it, so parametrised reruns stay
    idempotent.
    """
    if getattr(report, "manifest", None) is not None:
        _manifests[name] = report.manifest
    _entries[name] = {
        **_provenance(),
        "completed": report.completed,
        "num_requests": report.num_requests,
        "tokens_per_s": report.aggregate_tokens_per_s,
        "makespan_s": report.makespan_s,
        "ttft_ms_p50": report.ttft.p50 * 1e3,
        "ttft_ms_p99": report.ttft.p99 * 1e3,
        "ttft_ms_mean": report.ttft.mean * 1e3,
        "tpot_ms_p50": report.tpot.p50 * 1e3,
        "tpot_ms_p99": report.tpot.p99 * 1e3,
        "preemptions": report.preemptions,
        "prefix_hit_rate": report.prefix_hit_rate,
        **extra,
    }


def record_cluster(name: str, report, **extra) -> None:
    """Register one cluster scenario's outcome under ``name``.

    ``report`` is a :class:`~repro.serving.cluster.ClusterReport`; ``extra``
    adds scenario-specific scalars (scaling factors, sweep parameters, …).
    """
    if getattr(report, "manifest", None) is not None:
        _manifests[name] = report.manifest
    entry = {
        **_provenance(),
        "completed": report.completed,
        "num_requests": report.num_requests,
        "fleet_tokens_per_s": report.fleet_tokens_per_s,
        "makespan_s": report.makespan_s,
        "ttft_ms_p50": report.ttft.p50 * 1e3,
        "ttft_ms_p95": report.ttft.p95 * 1e3,
        "ttft_ms_p99": report.ttft.p99 * 1e3,
        "replica_seconds": report.replica_seconds,
        "peak_replicas": report.peak_replicas,
        "preemptions": report.preemptions,
        **extra,
    }
    # Key present only when an SLO was configured, keeping the flat
    # every-value-a-number contract for numeric diffing.
    if report.slo_attainment is not None:
        entry["slo_attainment"] = report.slo_attainment
    _cluster_entries[name] = entry


def write(path: Path = ARTIFACT_PATH,
          cluster_path: Path = CLUSTER_ARTIFACT_PATH,
          manifest_path: Path = MANIFEST_ARTIFACT_PATH) -> Path:
    """Write the collected entries (sorted by name) as JSON; returns the
    engine-artifact path.  Each file is a no-op when nothing was recorded
    for it.  ``REPRO_BENCH_DIR`` redirects every artifact into that
    directory (creating it) — ``repro reproduce --check`` uses this to
    regenerate into a scratch directory without touching the committed
    files.

    Alongside the numeric artifacts, ``BENCH_manifests.json`` records
    each entry's run manifest (config snapshot + workload fingerprint,
    captured from ``report.manifest``) — the provenance ``repro
    reproduce`` regenerates every entry from.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        base = Path(override)
        base.mkdir(parents=True, exist_ok=True)
        path = base / ARTIFACT_PATH.name
        cluster_path = base / CLUSTER_ARTIFACT_PATH.name
        manifest_path = base / MANIFEST_ARTIFACT_PATH.name
    if _entries:
        path.write_text(json.dumps(dict(sorted(_entries.items())), indent=2)
                        + "\n")
    if _cluster_entries:
        cluster_path.write_text(
            json.dumps(dict(sorted(_cluster_entries.items())), indent=2)
            + "\n")
    if _manifests:
        manifest_path.write_text(
            json.dumps(dict(sorted(_manifests.items())), indent=2) + "\n")
    return path
