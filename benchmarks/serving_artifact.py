"""Machine-readable serving-benchmark artifact: ``BENCH_serving.json``.

Every serving benchmark records its headline numbers here; the conftest
session hook writes the collected entries to ``benchmarks/BENCH_serving.json``
once the run finishes.  CI uploads the file as a build artifact, so the
serving perf trajectory (throughput, TTFT/TPOT percentiles, preemptions,
prefix hit rate) is tracked across PRs instead of living only in pytest
stdout.  The format is flat on purpose — one entry per benchmark scenario,
every value a number — so diffing two PRs' artifacts is a one-liner.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"

_entries: Dict[str, dict] = {}


def record(name: str, report, **extra) -> None:
    """Register one serving scenario's outcome under ``name``.

    ``report`` is a :class:`~repro.serving.metrics.ServingReport`; ``extra``
    adds scenario-specific scalars (speedups, sweep parameters, …).
    Re-recording a name overwrites it, so parametrised reruns stay
    idempotent.
    """
    _entries[name] = {
        "completed": report.completed,
        "num_requests": report.num_requests,
        "tokens_per_s": report.aggregate_tokens_per_s,
        "makespan_s": report.makespan_s,
        "ttft_ms_p50": report.ttft.p50 * 1e3,
        "ttft_ms_p99": report.ttft.p99 * 1e3,
        "ttft_ms_mean": report.ttft.mean * 1e3,
        "tpot_ms_p50": report.tpot.p50 * 1e3,
        "tpot_ms_p99": report.tpot.p99 * 1e3,
        "preemptions": report.preemptions,
        "prefix_hit_rate": report.prefix_hit_rate,
        **extra,
    }


def write(path: Path = ARTIFACT_PATH) -> Path:
    """Write the collected entries (sorted by name) as JSON; returns the
    path.  A no-op returning the path when nothing was recorded."""
    if _entries:
        path.write_text(json.dumps(dict(sorted(_entries.items())), indent=2)
                        + "\n")
    return path
