"""Cluster scaling: fleet throughput and SLO-aware autoscaling.

Not a paper artefact — the paper (conf_micro_YeC25) measures single-request
latency only.  This benchmark records what the cluster tier adds on top of
the single-node serving engine: near-linear fleet throughput scaling on a
heavy Poisson trace (replicas are independent accelerators behind a
router), and a p95 TTFT SLO that a fixed single replica misses by a wide
margin but the autoscaler — starting from that same single replica —
meets by growing the fleet as the backlog and rolling p95 TTFT cross its
thresholds.  Headline numbers land in ``BENCH_cluster.json`` via the
conftest session hook.
"""

import os

import pytest

import serving_artifact
from repro.models.config import GPT2
from repro.serving.cluster import AutoscalerConfig, ServingCluster
from repro.serving.workload_gen import poisson_trace

# REPRO_BENCH_FAST=1 (the CI smoke job) shrinks the traces; the asserted
# comparisons are structural and hold at both sizes.
FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

# Heavy load: arrivals far above one replica's service rate, so makespan is
# compute-bound and adding replicas divides it.
SCALING_REQUESTS = 32 if FAST else 64
SCALING_RATE_HZ = 60.0

# Overload for the SLO scenario: ~2x one replica's service rate, sustained
# long enough that a fixed single replica's queue (and therefore TTFT)
# grows without bound while the autoscaler absorbs it early.
SLO_REQUESTS = 48 if FAST else 96
SLO_RATE_HZ = 12.0
SLO_TTFT_S = 1.5


@pytest.fixture(scope="module")
def scaling_trace():
    return poisson_trace(SCALING_REQUESTS, SCALING_RATE_HZ, seed=0)


@pytest.fixture(scope="module")
def slo_trace():
    return poisson_trace(SLO_REQUESTS, SLO_RATE_HZ, seed=0)


@pytest.fixture(scope="module")
def single_replica_report(scaling_trace):
    return ServingCluster(GPT2, initial_replicas=1).run(scaling_trace)


@pytest.mark.benchmark(group="cluster")
def test_fleet_throughput_scales_with_replicas(benchmark, scaling_trace,
                                               single_replica_report):
    base = single_replica_report.fleet_tokens_per_s
    two = ServingCluster(GPT2, initial_replicas=2).run(scaling_trace)
    four_cluster = ServingCluster(GPT2, initial_replicas=4)
    four = benchmark(four_cluster.run, scaling_trace)

    print("\n" + four.format())
    for label, report in (("1", single_replica_report), ("2", two),
                          ("4", four)):
        speedup = report.fleet_tokens_per_s / base
        print(f"  {label} replica(s): {report.fleet_tokens_per_s:8.1f} "
              f"tok/s ({speedup:.2f}x)")
        serving_artifact.record_cluster(
            f"cluster_scaling_{label}rep", report,
            speedup_vs_1_replica=speedup)

    assert single_replica_report.completed == SCALING_REQUESTS
    assert two.completed == four.completed == SCALING_REQUESTS
    # Replicas are independent accelerators behind a router: fleet
    # throughput must scale near-linearly on a compute-bound trace.
    assert two.fleet_tokens_per_s >= 1.8 * base
    assert four.fleet_tokens_per_s >= 3.0 * base


@pytest.mark.benchmark(group="cluster")
def test_autoscaler_meets_slo_single_replica_misses(benchmark, slo_trace):
    fixed = ServingCluster(GPT2, initial_replicas=1).run(slo_trace)
    autoscaled_cluster = ServingCluster(
        GPT2, initial_replicas=1, router="least_queue",
        autoscaler=AutoscalerConfig(
            min_replicas=1, max_replicas=4, slo_ttft_s=SLO_TTFT_S,
            control_interval_s=0.1, cooldown_s=0.3,
            queue_high_per_replica=2.0,
            # Standby image already packed: the warm-up is deploy/attach,
            # not the full one-time parameter packing.
            warmup_s=0.2))
    autoscaled = benchmark(autoscaled_cluster.run, slo_trace)

    print("\n" + autoscaled.format())
    print(f"  fixed 1-replica p95 TTFT: {fixed.ttft.p95 * 1e3:8.1f} ms "
          f"(target {SLO_TTFT_S * 1e3:.0f} ms)")
    print(f"  autoscaled     p95 TTFT: {autoscaled.ttft.p95 * 1e3:8.1f} ms, "
          f"peak {autoscaled.peak_replicas} replicas, "
          f"{autoscaled.replica_seconds:.1f} replica-s")
    serving_artifact.record_cluster(
        "cluster_slo_fixed_1rep", fixed, slo_ttft_ms=SLO_TTFT_S * 1e3,
        slo_p95_attained=float(fixed.ttft.p95 <= SLO_TTFT_S))
    serving_artifact.record_cluster(
        "cluster_slo_autoscaled", autoscaled, slo_ttft_ms=SLO_TTFT_S * 1e3,
        slo_p95_attained=float(autoscaled.ttft.p95 <= SLO_TTFT_S))

    assert fixed.completed == autoscaled.completed == SLO_REQUESTS
    # The overload must genuinely break the fixed replica...
    assert fixed.ttft.p95 > SLO_TTFT_S
    # ...and the autoscaler must absorb it: whole-run p95 within the SLO,
    # reached by actually growing the fleet.
    assert autoscaled.ttft.p95 <= SLO_TTFT_S
    assert autoscaled.peak_replicas > 1
    assert autoscaled.fleet_tokens_per_s > fixed.fleet_tokens_per_s
