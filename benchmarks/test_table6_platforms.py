"""Table 6: the experimental platform setup.

Regenerates the platform-comparison table (frequency, quantisation, TDP, peak
INT8 throughput, memory system) from the platform models and checks the
values against the paper's Table 6.
"""

import pytest

from repro.platform.fpga import AMD_U280, AMD_U280_DFX, AMD_U55C
from repro.platform.gpu import NVIDIA_2080TI, NVIDIA_A100


def build_table6():
    rows = {}
    for label, platform in [("Ours", AMD_U55C), ("Allo", AMD_U280),
                            ("DFX", AMD_U280_DFX)]:
        rows[label] = {
            "platform": platform.name,
            "process_nm": platform.process_node_nm,
            "freq_mhz": platform.frequency_mhz,
            "quantization": platform.quantization.name,
            "tdp_w": platform.tdp_watts,
            "peak_int8_tops": platform.peak_int8_tops,
            "offchip_gb": platform.hbm_capacity_gb,
            "offchip_gbs": platform.hbm_bandwidth_gbs,
            "onchip_mb": platform.onchip_memory_mb,
        }
    for label, platform in [("A100", NVIDIA_A100), ("2080Ti", NVIDIA_2080TI)]:
        rows[label] = {
            "platform": platform.name,
            "process_nm": platform.process_node_nm,
            "freq_mhz": platform.frequency_mhz,
            "quantization": platform.quantization.name,
            "tdp_w": platform.tdp_watts,
            "peak_int8_tops": platform.peak_int8_tops,
            "offchip_gb": platform.memory_capacity_gb,
            "offchip_gbs": platform.memory_bandwidth_gbs,
            "onchip_mb": platform.onchip_memory_mb,
        }
    return rows


@pytest.mark.benchmark(group="table6")
def test_table6_platform_setup(benchmark):
    rows = benchmark(build_table6)
    print("\nTable 6: evaluated platforms")
    for label, row in rows.items():
        print(f"  {label:>6}: {row['platform']:<16} {row['freq_mhz']:>6.0f} MHz  "
              f"{row['quantization']:<6} {row['tdp_w']:>4.0f} W  "
              f"{row['peak_int8_tops']:>6.1f} TOPS  "
              f"{row['offchip_gb']:>4.0f} GB @ {row['offchip_gbs']:>6.0f} GB/s  "
              f"on-chip {row['onchip_mb']:.1f} MB")

    assert rows["Ours"]["tdp_w"] == 150
    assert rows["Ours"]["peak_int8_tops"] == 24.5
    assert rows["Allo"]["tdp_w"] == 225
    assert rows["DFX"]["freq_mhz"] == 200
    assert rows["A100"]["peak_int8_tops"] == 624
    assert rows["2080Ti"]["offchip_gbs"] == 616
    # The memory-wall framing: the FPGAs have ~25x less compute than the A100
    # but only ~4x less bandwidth.
    compute_gap = rows["A100"]["peak_int8_tops"] / rows["Ours"]["peak_int8_tops"]
    bandwidth_gap = rows["A100"]["offchip_gbs"] / rows["Ours"]["offchip_gbs"]
    assert compute_gap > 20 and bandwidth_gap < 5
