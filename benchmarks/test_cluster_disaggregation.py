"""The three serving regimes — unified, hybrid, disaggregated — plus the
streamed KV hand-off that narrows disaggregation's TPOT cost.

Not a paper artefact — the paper (conf_micro_YeC25) measures single-request
latency only.  Two scenarios, both recorded in ``BENCH_cluster.json`` via
the conftest session hook:

* **Saturated decode-heavy trace** (short prompts, long outputs, arrivals
  far above the fleet's decode rate): the regime disaggregation exists
  for.  At equal replica count, dedicating replicas to prefill protects
  p95 TTFT by an order of magnitude — new arrivals never queue behind
  long-running token generation — while TPOT pays for the smaller decode
  pool.  Hybrid colocation (SARATHI-style ``prefill_token_cap``) takes
  the opposite trade: it stays colocated and shaves TPOT interference
  without the TTFT protection.  Here the decode pool is
  *capacity*-bound, so streaming the hand-off keeps the TTFT advantage
  and never does worse than the monolithic transfer, but it cannot buy
  back replica capacity.

* **Transfer-bound burst** (short outputs, near-instant arrivals, slow
  interconnect): decode slots sit idle waiting for KV payloads, which is
  the regime streaming exists for.  Dispatching at the first chunk
  overlaps the stream tail with decode, and the asserted headline is
  that this recovers >= 50% of the monolithic TPOT gap vs unified.
"""

import json
import os

import pytest

import serving_artifact
from repro.models.config import GPT2
from repro.serving import DisaggregationConfig, ServingCluster, Tracer
from repro.serving.scheduler import SchedulerConfig
from repro.serving.telemetry import critical_path, timelines_from_tracer
from repro.serving.workload_gen import poisson_trace

# REPRO_BENCH_FAST=1 (the CI smoke job) shrinks the traces; the asserted
# comparisons are structural and hold at both sizes, but the unified
# fleet's TTFT tail shrinks with the pile-up, so the advantage floor
# scales down with it.
FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NUM_REQUESTS = 48 if FAST else 64
RATE_HZ = 30.0
TOTAL_REPLICAS = 4
SPLIT = (2, 2)
PREFILL_TOKEN_CAP = 32
STREAM_CHUNKS = 12
SLOW_LINK_GBS = 0.01
TTFT_ADVANTAGE_FLOOR = 5.0 if FAST else 10.0


def run_cluster(*, split=None, gbs=None, chunks=1, cap=None):
    """One cluster run: unified (``split=None``), hybrid (``cap``), or
    disaggregated (``split=(p, d)``, optionally streamed)."""
    kwargs = {}
    if cap is not None:
        kwargs["scheduler_config"] = SchedulerConfig(prefill_token_cap=cap)
    if split is None:
        cluster = ServingCluster(GPT2, initial_replicas=TOTAL_REPLICAS,
                                 **kwargs)
    else:
        prefill, decode = split
        cluster = ServingCluster(
            GPT2,
            disaggregation=DisaggregationConfig(prefill_replicas=prefill,
                                                decode_replicas=decode,
                                                kv_transfer_gbs=gbs,
                                                kv_stream_chunks=chunks),
            **kwargs)
    return cluster


def record(name, report, unified_report, **extra):
    extra = dict(
        p95_ttft_vs_unified=unified_report.ttft.p95 / report.ttft.p95,
        tpot_ms_mean=report.tpot.mean * 1e3,
        **extra,
    )
    if report.disaggregated:
        extra.update(kv_migrations=report.kv_migrations,
                     kv_mb_transferred=report.kv_bytes_transferred / 1e6)
        if report.kv_stream_chunks:
            extra.update(kv_stream_chunks=report.kv_stream_chunks,
                         kv_stall_seconds=report.kv_stall_seconds,
                         kv_stall_steps=report.kv_stall_steps)
    serving_artifact.record_cluster(name, report, **extra)
    print(f"  {name:>36}: p95 ttft {report.ttft.p95 * 1e3:8.1f} ms "
          f"({extra['p95_ttft_vs_unified']:5.2f}x vs unified), "
          f"tpot mean {report.tpot.mean * 1e3:6.2f} ms")


@pytest.fixture(scope="module")
def decode_heavy_trace():
    """Short prompts, long outputs, arrivals far above the fleet's decode
    service rate — the regime disaggregation exists for."""
    return poisson_trace(NUM_REQUESTS, RATE_HZ, seed=0,
                         input_choices=(32, 64),
                         output_choices=(128, 256))


@pytest.fixture(scope="module")
def transfer_bound_trace():
    """Short outputs and a near-instant burst: over a slow interconnect,
    KV landings (not replica capacity) gate decode progress."""
    return poisson_trace(40 if FAST else 64, 400.0, seed=0,
                         input_choices=(32, 64),
                         output_choices=(32, 64))


@pytest.mark.benchmark(group="cluster")
def test_three_regimes_on_saturated_trace(benchmark, decode_heavy_trace):
    """All three regimes on the same saturated trace: unified, hybrid
    colocation, and disaggregation (monolithic and streamed hand-off)."""
    unified = run_cluster().run(decode_heavy_trace)
    hybrid = run_cluster(cap=PREFILL_TOKEN_CAP).run(decode_heavy_trace)
    mono = run_cluster(split=SPLIT).run(decode_heavy_trace)
    streamed_cluster = run_cluster(split=SPLIT, chunks=STREAM_CHUNKS)
    streamed = benchmark(streamed_cluster.run, decode_heavy_trace)

    print()
    record("cluster_disagg_unifiedx4", unified, unified)
    record("cluster_disagg_hybridx4", hybrid, unified,
           prefill_token_cap=PREFILL_TOKEN_CAP)
    record("cluster_disagg_2p_2d", mono, unified)
    record("cluster_disagg_2p_2d_streamed", streamed, unified)

    for report in (unified, hybrid, mono, streamed):
        assert report.completed == NUM_REQUESTS
    # The disaggregation headline: an order-of-magnitude p95 TTFT win at
    # equal replica count — prefill never queues behind decode — and the
    # streamed hand-off keeps every bit of it.
    assert unified.ttft.p95 / mono.ttft.p95 >= TTFT_ADVANTAGE_FLOOR
    assert unified.ttft.p95 / streamed.ttft.p95 >= TTFT_ADVANTAGE_FLOOR
    # The trade is real and recorded: the decode pool halved, so TPOT
    # degrades.  This gap is capacity-bound — streaming cannot shrink it
    # here (see the transfer-bound test for where it can) but must never
    # widen it.
    assert mono.tpot.mean > unified.tpot.mean
    assert streamed.tpot.mean <= mono.tpot.mean * 1.01
    # Hybrid colocation takes the opposite trade: capping per-step
    # prefill tokens trims decode interference (TPOT no worse than
    # unified) at a marginal TTFT cost, with no interconnect traffic.
    assert hybrid.tpot.mean <= unified.tpot.mean
    assert hybrid.ttft.p95 <= unified.ttft.p95 * 1.05
    assert not hybrid.disaggregated
    assert mono.kv_migrations == streamed.kv_migrations == NUM_REQUESTS


@pytest.mark.benchmark(group="cluster")
def test_streaming_recovers_tpot_on_transfer_bound_burst(
        transfer_bound_trace):
    """Where the decode pool idles on KV landings, dispatching at the
    first chunk recovers >= 50% of the monolithic TPOT gap vs unified."""
    n = len(transfer_bound_trace)
    unified = run_cluster().run(transfer_bound_trace)
    mono = run_cluster(split=SPLIT,
                       gbs=SLOW_LINK_GBS).run(transfer_bound_trace)
    streamed = run_cluster(split=SPLIT, gbs=SLOW_LINK_GBS,
                           chunks=STREAM_CHUNKS).run(transfer_bound_trace)

    gap = mono.tpot.mean - unified.tpot.mean
    recovered = (mono.tpot.mean - streamed.tpot.mean) / gap

    print()
    record("cluster_disagg_burst_unifiedx4", unified, unified)
    record("cluster_disagg_burst_2p_2d", mono, unified,
           kv_transfer_gbs=SLOW_LINK_GBS)
    record("cluster_disagg_burst_2p_2d_streamed", streamed, unified,
           kv_transfer_gbs=SLOW_LINK_GBS, tpot_gap_recovered=recovered)
    print(f"  tpot gap {gap * 1e3:5.2f} ms, streamed recovers "
          f"{recovered * 100:5.1f}%")

    for report in (unified, mono, streamed):
        assert report.completed == n
    # The monolithic hand-off serialises transfer before decode, opening
    # a real TPOT gap over unified on the slow link ...
    assert gap > 0
    # ... and the streamed hand-off closes at least half of it while
    # moving byte-identical payloads.
    assert recovered >= 0.5
    assert streamed.tpot.mean * 1e3 <= 17.7
    assert streamed.kv_bytes_transferred == mono.kv_bytes_transferred


@pytest.mark.benchmark(group="cluster")
def test_critical_path_attributes_transfer_bound_latency():
    """The tracing tentpole's attribution check: on a trace engineered to
    be transfer-bound (long prompts, two-token outputs, a 1 MB/s link,
    spaced arrivals), ``repro trace critical-path`` must pin >= 95% of
    the p95 end-to-end latency on KV_TRANSFER/KV_STALL spans.  Uses the
    e2e metric because disaggregation emits the first token on the
    prefill replica *before* the hand-off — transfer time can never sit
    inside the TTFT window."""
    n = 24 if FAST else 32
    trace = poisson_trace(n, 0.5, seed=0,
                          input_choices=(256,), output_choices=(2,))
    tracer = Tracer()
    cluster = ServingCluster(
        GPT2,
        disaggregation=DisaggregationConfig(prefill_replicas=1,
                                            decode_replicas=3,
                                            kv_transfer_gbs=0.001),
        tracer=tracer)
    report = cluster.run(trace)
    assert report.completed == n

    timelines = timelines_from_tracer(tracer)
    path = critical_path(timelines, metric="e2e")
    transfer_share = sum(span["share"] for span in path["spans"]
                         if span["kind"] in ("KV_TRANSFER", "KV_STALL"))
    print(f"\n  p95 exemplar request {path['request']}: "
          f"e2e {path['latency_ms']:.1f} ms, "
          f"transfer share {transfer_share * 100:.1f}%")
    serving_artifact.record_cluster(
        "cluster_disagg_transfer_attribution", report,
        kv_transfer_gbs=0.001,
        p95_e2e_ms=path["latency_ms"],
        transfer_share=transfer_share)

    assert transfer_share >= 0.95, \
        f"critical path attributes only {transfer_share * 100:.1f}% " \
        "of the p95 e2e latency to KV transfer on a transfer-bound trace"


@pytest.mark.benchmark(group="cluster")
def test_unified_mode_byte_stable(decode_heavy_trace):
    """disaggregation=None must stay the PR 4 tier: deterministic output
    with the PR 4 report shape (no disaggregation keys anywhere)."""
    def run():
        return ServingCluster(GPT2,
                              initial_replicas=TOTAL_REPLICAS,
                              ).run(decode_heavy_trace)
    first, second = run().to_dict(), run().to_dict()
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True)
    assert "disaggregation" not in first
    assert all("role" not in entry for entry in first["replicas"])
