"""Disaggregated prefill/decode serving vs the unified fleet.

Not a paper artefact — the paper (conf_micro_YeC25) measures single-request
latency only.  This benchmark characterises the tentpole trade of
prefill/decode disaggregation on a *decode-heavy* trace (short prompts,
long outputs) that saturates the fleet: at equal replica count, dedicating
replicas to prefill protects TTFT from decode interference — new arrivals
never queue behind long-running token generation — while TPOT pays for it
(fewer replicas share all decode work, plus every request's KV crosses the
interconnect).  The headline comparison is asserted, the TPOT/throughput
trade is recorded alongside it, and the unified mode is asserted
byte-stable so the PR 4 tier remains the untouched reference.  Numbers
land in ``BENCH_cluster.json`` via the conftest session hook.
"""

import json
import os

import pytest

import serving_artifact
from repro.eval.serving import run_disaggregation_sweep
from repro.models.config import GPT2
from repro.serving import DisaggregationConfig, ServingCluster
from repro.serving.workload_gen import poisson_trace

# REPRO_BENCH_FAST=1 (the CI smoke job) shrinks the trace; the asserted
# comparison is structural and holds at both sizes, but saturation needs a
# higher arrival rate when there are fewer requests to pile up.
FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

NUM_REQUESTS = 40 if FAST else 64
RATE_HZ = 60.0 if FAST else 30.0
TOTAL_REPLICAS = 4
SPLITS = [(0, 4), (2, 2), (1, 3)]   # (0, n) = the unified reference


@pytest.fixture(scope="module")
def decode_heavy_trace():
    """Short prompts, long outputs, arrivals far above the fleet's decode
    service rate — the regime disaggregation exists for."""
    return poisson_trace(NUM_REQUESTS, RATE_HZ, seed=0,
                         input_choices=(32, 64),
                         output_choices=(128, 256))


@pytest.mark.benchmark(group="cluster")
def test_disaggregation_beats_unified_p95_ttft(benchmark,
                                               decode_heavy_trace):
    points = {
        (p, d): point
        for (p, d), point in zip(
            SPLITS, run_disaggregation_sweep(GPT2, decode_heavy_trace,
                                             SPLITS[:-1]))
    }
    split_cluster = ServingCluster(
        GPT2, disaggregation=DisaggregationConfig(prefill_replicas=1,
                                                  decode_replicas=3))
    one_three = benchmark(split_cluster.run, decode_heavy_trace)

    unified = points[(0, 4)].report
    balanced = points[(2, 2)].report
    print()
    for label, report in (("unified x4", unified),
                          ("2p + 2d", balanced),
                          ("1p + 3d", one_three)):
        ratio = unified.ttft.p95 / report.ttft.p95
        print(f"  {label:>10}: p95 ttft {report.ttft.p95 * 1e3:8.1f} ms "
              f"({ratio:4.2f}x vs unified), tpot mean "
              f"{report.tpot.mean * 1e3:6.2f} ms, "
              f"{report.fleet_tokens_per_s:7.1f} tok/s")
        extra = dict(
            p95_ttft_vs_unified=ratio,
            tpot_ms_mean=report.tpot.mean * 1e3,
        )
        if report.disaggregated:
            extra.update(kv_migrations=report.kv_migrations,
                         kv_mb_transferred=report.kv_bytes_transferred / 1e6)
        serving_artifact.record_cluster(
            f"cluster_disagg_{label.replace(' ', '').replace('+', '_')}",
            report, **extra)

    assert unified.completed == NUM_REQUESTS
    assert balanced.completed == one_three.completed == NUM_REQUESTS
    # The tentpole claim: at equal replica count on a saturated
    # decode-heavy trace, the disaggregated fleet's p95 TTFT beats the
    # unified fleet's — prefill work no longer queues behind decode.
    assert balanced.ttft.p95 < unified.ttft.p95
    # The trade is real and the benchmark records it: decode work now
    # shares fewer replicas (and pays the KV hand-off), so per-token
    # latency degrades.  Asserted loosely as a regime check.
    assert balanced.tpot.mean > unified.tpot.mean
    assert balanced.kv_migrations == NUM_REQUESTS


@pytest.mark.benchmark(group="cluster")
def test_unified_mode_byte_stable(decode_heavy_trace):
    """disaggregation=None must stay the PR 4 tier: deterministic output
    with the PR 4 report shape (no disaggregation keys anywhere)."""
    def run():
        return ServingCluster(GPT2,
                              initial_replicas=TOTAL_REPLICAS,
                              ).run(decode_heavy_trace)
    first, second = run().to_dict(), run().to_dict()
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True)
    assert "disaggregation" not in first
    assert all("role" not in entry for entry in first["replicas"])
