"""Table 7: configurations of the evaluated LLMs (from their model cards)."""

import pytest

from repro.eval.experiments import run_table7


@pytest.mark.benchmark(group="table7")
def test_table7_model_configurations(benchmark):
    rows = benchmark(run_table7)
    print("\nTable 7: evaluated LLM configurations")
    header = f"{'':>12}" + "".join(f"{name:>10}" for name in rows)
    print(header)
    for field in ("layers", "hidden_size", "ffn_hidden_size", "attention_heads",
                  "kv_heads", "activation"):
        line = f"{field:>12}" + "".join(f"{str(rows[m][field]):>10}" for m in rows)
        print(line)

    expected = {
        "gpt2": (24, 1024, 4096, 16, 16, "GELU"),
        "qwen": (24, 896, 4864, 14, 2, "SILU"),
        "llama": (22, 2048, 5632, 32, 4, "SILU"),
        "gemma": (26, 1152, 6912, 4, 1, "GELU"),
    }
    for model, values in expected.items():
        row = rows[model]
        assert (row["layers"], row["hidden_size"], row["ffn_hidden_size"],
                row["attention_heads"], row["kv_heads"], row["activation"]) == values
