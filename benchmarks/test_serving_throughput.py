"""Serving throughput: continuous batching vs the sequential sweep baseline.

Not a paper artefact — the paper (conf_micro_YeC25) measures single-request
latency only.  This benchmark records what the serving tier built on the same
analytical model adds: aggregate tokens/s of the continuous-batching engine
(1 and 2 devices) against `InferenceSession.throughput_sweep`, which serves
the identical request set one at a time.  The win comes from the model's
cost structure — each engine step streams the layer weights from HBM once
regardless of batch size — not from a tuned constant.
"""

import os

import pytest

import serving_artifact
from repro.eval.serving import compare_with_sequential, run_sequential_baseline
from repro.models.config import GPT2
from repro.serving import SchedulerConfig, ServingEngine, poisson_trace


# REPRO_BENCH_FAST=1 (the CI smoke job) shrinks the trace; the asserted
# comparisons are structural and hold at both sizes.
FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
NUM_REQUESTS = 24 if FAST else 64
ARRIVAL_RATE_HZ = 16.0


@pytest.fixture(scope="module")
def trace():
    return poisson_trace(NUM_REQUESTS, ARRIVAL_RATE_HZ, seed=0)


@pytest.fixture(scope="module")
def baseline(trace):
    return run_sequential_baseline(GPT2, trace)


@pytest.mark.benchmark(group="serving")
def test_continuous_batching_beats_sequential_sweep(benchmark, trace, baseline):
    engine = ServingEngine(GPT2, num_devices=1,
                           scheduler_config=SchedulerConfig(max_batch_size=8))
    report = benchmark(engine.run, trace)
    comparison = compare_with_sequential(report, baseline)
    print("\n" + report.format())
    print(comparison.format())
    serving_artifact.record("throughput_1dev", report,
                            speedup_vs_sequential=comparison.speedup)

    assert report.completed == NUM_REQUESTS
    # Even a single device must beat the one-request-at-a-time sweep: the
    # batch amortises the per-layer weight streaming that dominates decode.
    assert comparison.speedup > 1.5


@pytest.mark.benchmark(group="serving")
def test_sharding_scales_aggregate_throughput(benchmark, trace, baseline):
    engine = ServingEngine(GPT2, num_devices=2,
                           scheduler_config=SchedulerConfig(max_batch_size=8))
    report = benchmark(engine.run, trace)
    comparison = compare_with_sequential(report, baseline)
    print("\n" + report.format())
    print(comparison.format())
    serving_artifact.record("throughput_2dev", report,
                            speedup_vs_sequential=comparison.speedup)

    assert report.completed == NUM_REQUESTS
    assert comparison.speedup > 2.0
    # Both shards carry traffic.
    assert all(d.requests_served > 0 for d in report.devices)


@pytest.mark.benchmark(group="serving")
def test_batching_headroom_over_batch_of_one(benchmark, trace):
    """Aggregate tokens/s with batch=8 vs batch=1 on identical traffic."""
    batched = ServingEngine(GPT2, num_devices=1,
                            scheduler_config=SchedulerConfig(max_batch_size=8))
    unbatched = ServingEngine(GPT2, num_devices=1,
                              scheduler_config=SchedulerConfig(max_batch_size=1))
    batched_report = benchmark(batched.run, trace)
    unbatched_report = unbatched.run(trace)
    ratio = (batched_report.aggregate_tokens_per_s
             / unbatched_report.aggregate_tokens_per_s)
    print(f"\nbatch=8: {batched_report.aggregate_tokens_per_s:.1f} tok/s, "
          f"batch=1: {unbatched_report.aggregate_tokens_per_s:.1f} tok/s "
          f"({ratio:.1f}x)")
    assert ratio > 1.5
