"""Multi-tenant scheduling ablation: score-based global scheduling vs
fcfs and priority tiers on a class-mixed overload.

Not a paper artefact — the paper (conf_micro_YeC25) measures
single-request latency only.  This benchmark drives the same SLO-classed
Poisson overload (interactive/standard/batch/best_effort) through the
three scheduler stacks and judges them the way a multi-tenant operator
would: class-weighted TTFT attainment (misses on an interactive request
cost 8x a best-effort miss) and the Jain fairness index over per-class
attainment.  The claim under test is the tentpole's: a single
value-density score with aging strictly beats both FCFS (ignores value,
so the backlog buries interactive requests) and strict priority tiers
(ignore cost and age, so low tiers are served dead last) — while starving
nobody: every best-effort request still lands inside its own generous
TTFT target.  Headline numbers land in ``BENCH_cluster.json`` via the
conftest session hook.
"""

import os

import pytest

import serving_artifact
from repro.eval.serving import run_class_mix_sweep
from repro.models.config import GPT2
from repro.serving.workload_gen import poisson_trace

# REPRO_BENCH_FAST=1 (the CI smoke job) shrinks the trace; the asserted
# orderings are structural and hold at both sizes.
FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

# Deep overload on a fixed 2-replica fleet: arrivals at ~3x the fleet's
# service rate for the whole window, so admission order — not capacity —
# decides who makes their target.  Milder load lets priority tie or edge
# out score (there is no backlog to triage); this regime is where the
# stacks genuinely separate.
NUM_REQUESTS = 64 if FAST else 128
RATE_HZ = 45.0
REPLICAS = 2
MIX = "interactive=2,standard=2,batch=1,best_effort=1"


@pytest.fixture(scope="module")
def class_mix_trace():
    return poisson_trace(NUM_REQUESTS, RATE_HZ, seed=7,
                         slo_class_mix=MIX,
                         input_choices=(32, 64, 128),
                         output_choices=(16, 32, 64))


@pytest.fixture(scope="module")
def class_mix_points(class_mix_trace):
    points = run_class_mix_sweep(GPT2, class_mix_trace,
                                 initial_replicas=REPLICAS)
    return {point.scheduler: point for point in points}


@pytest.mark.benchmark(group="cluster")
def test_score_beats_fcfs_and_priority_on_weighted_attainment(
        benchmark, class_mix_trace, class_mix_points):
    fcfs = class_mix_points["fcfs"]
    priority = class_mix_points["priority"]
    score = class_mix_points["score"]

    # Time the score stack end to end — and since the rerun shares the
    # fixture's seed, it doubles as a determinism check on the sweep.
    timed = benchmark(
        lambda: run_class_mix_sweep(GPT2, class_mix_trace,
                                    schedulers=("score",),
                                    initial_replicas=REPLICAS)[0])
    assert timed.class_weighted_attainment == score.class_weighted_attainment

    print()
    for point in (fcfs, priority, score):
        print("  " + point.format())
        serving_artifact.record_cluster(
            f"class_mix_{point.scheduler}", point.report,
            class_weighted_attainment=point.class_weighted_attainment,
            jain_index=point.jain_fairness)

    # Overload must not shed load: every stack serves the whole trace.
    for point in (fcfs, priority, score):
        assert point.report.completed == NUM_REQUESTS

    # The headline ordering: one score function strictly beats both
    # incumbent stacks on what the tenants actually pay for.
    assert score.class_weighted_attainment > fcfs.class_weighted_attainment
    assert score.class_weighted_attainment \
        > priority.class_weighted_attainment
    # ...and does so *more fairly*, not by sacrificing low tiers.
    assert score.jain_fairness > fcfs.jain_fairness
    assert score.jain_fairness > priority.jain_fairness


def test_score_starves_nobody(class_mix_points):
    """Aging bounds every request's wait: under the score stack each
    best-effort request completes inside its own (generous) TTFT target
    even while 8x-value interactive traffic floods the fleet."""
    score = class_mix_points["score"]
    best_effort = next(o for o in score.report.class_outcomes
                       if o.slo_class.name == "best_effort")
    assert best_effort.submitted > 0
    assert best_effort.completed == best_effort.submitted
    # Zero starved: every best-effort request got its first token within
    # the class's own TTFT target, overload notwithstanding.
    assert best_effort.ttft_attained == best_effort.completed
    assert best_effort.ttft.max <= best_effort.slo_class.ttft_target_s
