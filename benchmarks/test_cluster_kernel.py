"""Self-benchmark of the discrete-event cluster kernel.

Not a paper artefact — the paper (conf_micro_YeC25) measures
single-request latency only.  This benchmark is the kernel rewrite's own
yardstick: a high-rate trace through a 50-replica fleet, timed end to
end, with the headline ``requests_per_sec`` recorded into
``BENCH_cluster.json`` so the simulator's throughput trajectory is
tracked across PRs like every other serving number.  A capped-size run
of the legacy step loop lands next to it as the reference (and doubles
as an at-scale differential check: both kernels must produce the
identical report on the shared trace).

Sizing: ``REPRO_BENCH_FAST=1`` (CI smoke) runs 10k requests; the default
tier-1 run 50k; ``REPRO_BENCH_FULL=1`` the headline one million requests
x 50 replicas, asserted to finish in seconds-not-minutes territory.  The
workload uses small prompts/outputs and a fat batch so the measured cost
is event dispatch plus engine stepping, not any one router policy.
"""

import gc
import json
import os
import time

import pytest

import serving_artifact
from repro.models.config import GPT2
from repro.serving import SchedulerConfig, Tracer
from repro.serving.cluster import ServingCluster
from repro.serving.workload_gen import diurnal_trace

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
FULL = os.environ.get("REPRO_BENCH_FULL") == "1"

NUM_REQUESTS = 1_000_000 if FULL else (10_000 if FAST else 50_000)
REPLICAS = 50
# The step loop's O(replicas) rescan per event is exactly what this
# benchmark exists to retire — cap its reference run so the FULL mode
# doesn't spend its budget on the loop being replaced.
STEP_REQUESTS = min(NUM_REQUESTS, 20_000)
# The tracing-overhead comparison reruns the kernel bench twice per arm;
# cap it so FULL mode doesn't spend its budget measuring the tracer.
TRACED_REQUESTS = min(NUM_REQUESTS, 50_000)
# The <10% req/s budget is pinned to the 50k-request bench, where a run
# is ~2s and the tracer's fixed costs amortize.  The FAST smoke shrink
# times a ~0.4s window, where scheduler jitter alone is worth several
# percent, so it guards with a looser ceiling.
TRACING_BUDGET = 0.20 if TRACED_REQUESTS < 50_000 else 0.10
SCHEDULER = SchedulerConfig(max_batch_size=64, token_budget=4096)


def kernel_trace(num_requests):
    return diurnal_trace(num_requests, 2000.0, 8000.0, period_s=60.0,
                         seed=42, input_choices=(16, 32),
                         output_choices=(2, 4))


def timed_run(kernel, trace, tracer=None):
    cluster = ServingCluster(GPT2, initial_replicas=REPLICAS,
                             router="round_robin",
                             scheduler_config=SCHEDULER, kernel=kernel,
                             tracer=tracer)
    # Start every sample from the same collector state: with a heap this
    # size a stray gen-2 pass landing mid-run swings the wall by >10%.
    gc.collect()
    start = time.perf_counter()
    report = cluster.run(trace)
    wall_s = time.perf_counter() - start
    return cluster, report, wall_s


@pytest.fixture(scope="module")
def reference_trace():
    """The capped-size trace both kernels run (differential at scale)."""
    return kernel_trace(STEP_REQUESTS)


@pytest.mark.benchmark(group="cluster")
def test_event_kernel_throughput():
    trace = kernel_trace(NUM_REQUESTS)
    cluster, report, wall_s = timed_run("event", trace)
    requests_per_sec = NUM_REQUESTS / wall_s

    print(f"\n  event kernel: {NUM_REQUESTS:,} requests x {REPLICAS} "
          f"replicas in {wall_s:.2f}s ({requests_per_sec:,.0f} req/s, "
          f"{cluster.events_processed:,} events, "
          f"{cluster._event_queue.stale_dropped:,} stale drops)")
    serving_artifact.record_cluster(
        "cluster_kernel_event", report,
        num_requests_simulated=NUM_REQUESTS,
        replicas=REPLICAS,
        wall_s=wall_s,
        requests_per_sec=requests_per_sec,
        events_processed=cluster.events_processed)

    assert report.completed == NUM_REQUESTS
    assert report.rejected == 0
    if FULL:
        # The tentpole's headline: one million requests across fifty
        # replicas in seconds, not minutes.
        assert wall_s < 120.0, \
            f"1M-request benchmark took {wall_s:.0f}s"


@pytest.mark.benchmark(group="cluster")
def test_step_time_memoization_delta(reference_trace):
    """The batch-signature LRU on ``engine_step_time_s``, measured where
    it pays: serialized single-request steps, whose (tokens, kv_len)
    signatures repeat across the whole trace.  Both req/s figures and
    the speedup land in the artifact; the memo must be invisible in the
    report bytes."""
    scheduler = SchedulerConfig(max_batch_size=1)

    def run():
        cluster = ServingCluster(GPT2, initial_replicas=REPLICAS,
                                 router="round_robin",
                                 scheduler_config=scheduler, kernel="event")
        start = time.perf_counter()
        report = cluster.run(reference_trace)
        return cluster, report, time.perf_counter() - start

    from repro.serving.engine import DeviceWorker

    memo_cluster, memo_report, memo_wall_s = run()
    original = DeviceWorker.STEP_TIME_CACHE_SIZE
    try:
        DeviceWorker.STEP_TIME_CACHE_SIZE = 0
        _, cold_report, cold_wall_s = run()
    finally:
        DeviceWorker.STEP_TIME_CACHE_SIZE = original

    hits = sum(r.worker.step_cache_hits for r in memo_cluster.replicas)
    steps = sum(r.worker.steps for r in memo_cluster.replicas)
    memo_rps = STEP_REQUESTS / memo_wall_s
    cold_rps = STEP_REQUESTS / cold_wall_s
    speedup = cold_wall_s / memo_wall_s
    print(f"\n  memoized: {memo_wall_s:.2f}s ({memo_rps:,.0f} req/s, "
          f"{hits:,}/{steps:,} step-time hits)")
    print(f"  cold:     {cold_wall_s:.2f}s ({cold_rps:,.0f} req/s) "
          f"-> {speedup:.2f}x")
    serving_artifact.record_cluster(
        "cluster_kernel_step_memo", memo_report,
        num_requests_simulated=STEP_REQUESTS,
        replicas=REPLICAS,
        wall_s=memo_wall_s,
        requests_per_sec=memo_rps,
        cold_requests_per_sec=cold_rps,
        memo_speedup=speedup,
        step_cache_hits=hits)

    # Correctness first: memoization must never change a single byte of
    # the report, and on this workload nearly every step is a hit.
    assert json.dumps(memo_report.to_dict(), sort_keys=True) \
        == json.dumps(cold_report.to_dict(), sort_keys=True)
    assert hits > 0.9 * steps


@pytest.mark.benchmark(group="cluster")
def test_traced_kernel_overhead():
    """Request-lifecycle tracing's cost ceiling: the kernel bench rerun
    with a :class:`Tracer` attached must keep >= 90% of the untraced
    req/s at the 50k-request size (:data:`TRACING_BUDGET` relaxes the
    smoke shrink), while the traced report minus its gated ``telemetry``
    section stays byte-identical to the untraced one.  An untimed warm-up pair
    (caches, allocator, CPU frequency) then interleaved best-of-five
    walls per arm, so machine jitter doesn't masquerade as tracer cost."""
    trace = kernel_trace(TRACED_REQUESTS)
    tracer = Tracer()

    timed_run("event", trace)
    timed_run("event", trace, tracer=tracer)
    untraced_wall_s, traced_wall_s = float("inf"), float("inf")
    for _ in range(5):
        _, untraced_report, wall_s = timed_run("event", trace)
        untraced_wall_s = min(untraced_wall_s, wall_s)
        _, traced_report, wall_s = timed_run("event", trace, tracer=tracer)
        traced_wall_s = min(traced_wall_s, wall_s)

    spans_recorded = sum(tracer.span_counts().values())
    traced_rps = TRACED_REQUESTS / traced_wall_s
    untraced_rps = TRACED_REQUESTS / untraced_wall_s
    overhead = traced_wall_s / untraced_wall_s - 1.0
    print(f"\n  untraced: {untraced_wall_s:.2f}s "
          f"({untraced_rps:,.0f} req/s)")
    print(f"  traced:   {traced_wall_s:.2f}s ({traced_rps:,.0f} req/s, "
          f"{spans_recorded:,} spans) -> {overhead * 100:+.1f}% wall")
    serving_artifact.record_cluster(
        "cluster_kernel_traced", traced_report,
        num_requests_simulated=TRACED_REQUESTS,
        replicas=REPLICAS,
        wall_s=traced_wall_s,
        requests_per_sec=traced_rps,
        untraced_requests_per_sec=untraced_rps,
        overhead_pct=overhead * 100,
        spans_recorded=spans_recorded)

    # Tracing must stay observational (same report bytes) and cheap
    # (<10% req/s regression vs. the untraced run).
    traced_payload = traced_report.to_dict()
    traced_payload.pop("telemetry")
    assert json.dumps(traced_payload, sort_keys=True) \
        == json.dumps(untraced_report.to_dict(), sort_keys=True)
    assert traced_rps >= (1.0 - TRACING_BUDGET) * untraced_rps, \
        f"tracing costs {(1.0 - traced_rps / untraced_rps) * 100:.1f}% " \
        f"req/s (>{TRACING_BUDGET * 100:.0f}% budget)"


@pytest.mark.benchmark(group="cluster")
def test_step_loop_reference_and_scale_differential(reference_trace):
    step_cluster, step_report, step_wall_s = timed_run("step",
                                                       reference_trace)
    step_rps = STEP_REQUESTS / step_wall_s
    event_cluster, event_report, event_wall_s = timed_run("event",
                                                          reference_trace)

    print(f"\n  step loop:    {STEP_REQUESTS:,} requests in "
          f"{step_wall_s:.2f}s ({step_rps:,.0f} req/s)")
    print(f"  event kernel: {STEP_REQUESTS:,} requests in "
          f"{event_wall_s:.2f}s "
          f"({STEP_REQUESTS / event_wall_s:,.0f} req/s)")
    serving_artifact.record_cluster(
        "cluster_kernel_step_reference", step_report,
        num_requests_simulated=STEP_REQUESTS,
        replicas=REPLICAS,
        wall_s=step_wall_s,
        requests_per_sec=step_rps)

    # The benchmark doubles as the differential harness at a scale the
    # unit suite never reaches: byte-identical reports, and the event
    # kernel processed exactly as many events as the loop ran iterations.
    assert json.dumps(event_report.to_dict(), sort_keys=True) \
        == json.dumps(step_report.to_dict(), sort_keys=True)
    assert event_cluster.events_processed == step_cluster.iterations
