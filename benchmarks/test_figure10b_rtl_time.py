"""Figure 10b: PyTorch-to-RTL generation time breakdown.

Paper reference points: total RTL generation takes 1252-1548 s per model,
dominated by the (parallel) HLS synthesis and vendor profiling runs, with
parameter packing and StreamTensor compilation only small fractions.
"""

import pytest

from repro.eval.experiments import format_figure10b, run_figure10b


@pytest.mark.benchmark(group="figure10")
def test_figure10b_rtl_generation_time(benchmark, warm_context):
    rows = benchmark(run_figure10b, warm_context)
    print("\n" + format_figure10b(rows))

    assert {row.model for row in rows} == {"gpt2", "qwen", "llama", "gemma"}
    for row in rows:
        vendor_seconds = row.hls_seconds + row.profiling_seconds
        # Vendor tools dominate; StreamTensor compilation is a tiny slice.
        assert vendor_seconds > 0.85 * row.total_seconds
        assert row.streamtensor_seconds < 0.05 * row.total_seconds
        # Total wall-clock stays in the paper's order of magnitude (minutes,
        # not hours or seconds).
        assert 200 < row.total_seconds < 5000
        assert row.param_packing_seconds > 0
