"""Figure 10c: StreamTensor compilation time breakdown by pipeline stage.

Paper reference points: total compilation takes 26.8-63.4 s per model, with
the high-level itensor stages (Linalg optimisation through resource
allocation) fast and the low-level stages (bufferization, HLS optimisation,
code generation) slower.  Our pure-Python reproduction is far faster in
absolute terms; the benchmark checks the breakdown structure and measures the
real per-stage times.
"""

import pytest

from repro.compiler.report import STAGE_NAMES
from repro.eval.experiments import format_figure10c, run_figure10c


@pytest.mark.benchmark(group="figure10")
def test_figure10c_compile_time_breakdown(benchmark, warm_context):
    breakdowns = benchmark(run_figure10c, warm_context)
    print("\n" + format_figure10c(breakdowns))

    assert set(breakdowns) == {"gpt2", "qwen", "llama", "gemma"}
    for model, stages in breakdowns.items():
        # Every canonical stage of Figure 4 is present and timed.
        for name in STAGE_NAMES:
            assert name in stages, f"{model} missing stage {name}"
        total = sum(stages.values())
        assert total > 0
        # High-level itensor stages stay a modest share of the total.
        high_level = (stages["Linalg_Opt"] + stages["Linalg_Tiling"]
                      + stages["Kernel_Fusion"] + stages["Dataflow_Opt"])
        assert high_level < 0.9 * total
