"""Compiler-throughput benchmarks: wall-clock cost of the main pipeline stages.

These are conventional pytest-benchmark measurements (not paper artefacts):
they track how long the reproduction's compiler itself takes on a full
transformer block, which is the quantity Figure 10c reports for the original
implementation.
"""

import pytest

from repro.compiler import CompilerOptions, StreamTensorCompiler
from repro.dataflow.conversion import convert_to_dataflow
from repro.dataflow.fusion import fuse_kernels
from repro.dse.explorer import build_tiling_space
from repro.models.config import GPT2, LLAMA
from repro.models.transformer import build_decode_block, build_prefill_block
from repro.platform.fpga import AMD_U55C
from repro.platform.hls_profiler import HlsProfiler
from repro.resource.fifo_sizing import size_graph_fifos


@pytest.mark.benchmark(group="compiler")
def test_benchmark_full_compilation_gpt2(benchmark):
    graph = build_decode_block(GPT2, kv_len=64)
    options = CompilerOptions()

    result = benchmark(lambda: StreamTensorCompiler(options).compile(graph, GPT2))
    assert result.fusion_plan.num_groups == 1


@pytest.mark.benchmark(group="compiler")
def test_benchmark_full_compilation_llama_prefill(benchmark):
    graph = build_prefill_block(LLAMA, 128)
    options = CompilerOptions(generate_code=False)

    result = benchmark(lambda: StreamTensorCompiler(options).compile(graph, LLAMA))
    assert result.report.num_kernels > 5


@pytest.mark.benchmark(group="compiler")
def test_benchmark_kernel_fusion_stage(benchmark):
    graph = build_prefill_block(GPT2, 256)
    space = build_tiling_space(graph, 16, 128)
    configs = space.to_configs()

    def fuse():
        dataflow = convert_to_dataflow(graph, configs)
        return fuse_kernels(dataflow, c_max=AMD_U55C.onchip_memory_bytes)

    plan = benchmark(fuse)
    assert plan.num_groups == 1


@pytest.mark.benchmark(group="compiler")
def test_benchmark_fifo_sizing_stage(benchmark):
    graph = build_prefill_block(GPT2, 256)
    space = build_tiling_space(graph, 16, 128)
    dataflow = convert_to_dataflow(graph, space.to_configs())
    fuse_kernels(dataflow, c_max=AMD_U55C.onchip_memory_bytes)
    timings = HlsProfiler(AMD_U55C).profile_graph(dataflow)

    result = benchmark(lambda: size_graph_fifos(dataflow, timings))
    assert result.lp_status in ("optimal", "no-stream-edges")
